package match

import (
	"sort"

	"graphkeys/internal/eqrel"
	"graphkeys/internal/graph"
)

// This file builds the candidate set L of §4.1 — all entity pairs of the
// same type on which at least one key is defined — its pairing-filtered
// variant of §4.2, and the entity-pair dependency index used by the
// entity-dependency and incremental-checking optimizations (§4.2) and by
// the dep edges of the product graph (§5.1).
//
// Two constructions of L are provided. Candidates is the literal
// definition: the full C(n, 2) sweep over every keyed type's
// population. CandidatesIndexed generates the same chase(G, Σ) from a
// usually far smaller L by joining the graph's inverted value index:
// under exact value equality, a witness of a key with a value anchor (a
// value variable or constant) must bind that anchor to a single
// interned value node lying in the d-neighborhood of both sides
// (locality, §4.1), so only same-type pairs sharing such a value node
// can ever be identified. Types whose keys do not all carry a value
// anchor, or matchers with a custom ValueEq (where distinct value nodes
// can compare equal), fall back to the full sweep per type.

// Candidates returns the unfiltered candidate set L: every unordered
// pair of distinct same-type entities whose type has a key. The result
// is sorted for determinism.
func (m *Matcher) Candidates() []eqrel.Pair {
	var out []eqrel.Pair
	for _, t := range m.KeyedTypes() {
		ents := m.G.EntitiesOfType(t)
		for i := 0; i < len(ents); i++ {
			for j := i + 1; j < len(ents); j++ {
				out = append(out, eqrel.MakePair(int32(ents[i]), int32(ents[j])))
			}
		}
	}
	sortPairs(out)
	return out
}

// CandidatesPaired returns L filtered by the pairing necessary
// condition (§4.2 "Reducing L"): pairs no key can pair are dropped.
func (m *Matcher) CandidatesPaired() []eqrel.Pair {
	return m.FilterPaired(m.Candidates())
}

// FilterPaired filters a candidate list by the pairing necessary
// condition (§4.2 "Reducing L"), in place.
func (m *Matcher) FilterPaired(all []eqrel.Pair) []eqrel.Pair {
	out := all[:0]
	for _, pr := range all {
		if m.CanBePaired(graph.NodeID(pr.A), graph.NodeID(pr.B)) {
			out = append(out, pr)
		}
	}
	return out
}

// hasMatchableKey reports whether any key on t can match at all in the
// compiled graph; a type whose keys all reference absent predicates,
// types or constants needs no candidates.
func (m *Matcher) hasMatchableKey(t graph.TypeID) bool {
	for _, ck := range m.byType[t] {
		if ck.Matchable() {
			return true
		}
	}
	return false
}

// IndexableType reports whether candidate generation for type t may
// join the inverted value index instead of sweeping all same-type
// pairs: value equality must be exact (no custom ValueEq, so equal
// literals are one interned node) and every matchable key on t must
// carry a value anchor. A single anchor-free (purely entity-variable)
// key forces the full sweep, since its witnesses need not share any
// value node.
func (m *Matcher) IndexableType(t graph.TypeID) bool {
	if m.Opts.ValueEq != nil {
		return false
	}
	for _, ck := range m.byType[t] {
		if ck.Matchable() && !ck.HasValueAnchor() {
			return false
		}
	}
	return true
}

// CandidatesIndexed returns a candidate set L generated through the
// graph's inverted value index. It is a subset of Candidates()
// containing every pair any chasing sequence can directly identify, so
// running the chase (or any engine) over it yields exactly
// chase(G, Σ); the per-type fallback keeps it correct for custom
// ValueEq and anchor-free keys. The result is sorted for determinism.
func (m *Matcher) CandidatesIndexed() []eqrel.Pair {
	var out []eqrel.Pair
	seen := make(map[eqrel.Pair]bool)
	for _, t := range m.KeyedTypes() {
		if !m.hasMatchableKey(t) {
			continue // no key can fire; no candidate can be identified
		}
		if !m.IndexableType(t) {
			ents := m.G.EntitiesOfType(t)
			for i := 0; i < len(ents); i++ {
				for j := i + 1; j < len(ents); j++ {
					out = append(out, eqrel.MakePair(int32(ents[i]), int32(ents[j])))
				}
			}
			continue
		}
		if m.dByType[t] <= 1 {
			out = m.appendIndexedRadius1(out, t, seen)
		} else {
			out = m.appendIndexedRadiusD(out, t, seen)
		}
	}
	sortPairs(out)
	return out
}

// appendIndexedRadius1 generates candidates for a radius-1 type. With
// d = 1 every value anchor is a direct object of x (values are never
// subjects), so a witness at (e1, e2) requires out-edges (e1, p, v) and
// (e2, p, v) to the same interned value node: candidates are joined
// straight off the index's posting lists, with no traversal.
func (m *Matcher) appendIndexedRadius1(out []eqrel.Pair, t graph.TypeID, seen map[eqrel.Pair]bool) []eqrel.Pair {
	for _, e := range m.G.EntitiesOfType(t) {
		for _, edge := range m.G.Out(e) {
			if !m.G.IsValue(edge.To) {
				continue
			}
			for _, q := range m.G.ValueSubjects(edge.Pred, edge.To) {
				// Subjects are entities by construction; emit each
				// unordered pair once, from its smaller side.
				if q <= e || m.G.TypeOf(q) != t {
					continue
				}
				pr := eqrel.MakePair(int32(e), int32(q))
				if !seen[pr] {
					seen[pr] = true
					out = append(out, pr)
				}
			}
		}
	}
	return out
}

// appendIndexedRadiusD generates candidates for a type with radius
// d > 1, where a value anchor may sit several hops from x: a witness
// still binds it to a single value node inside the d-neighborhood of
// both sides, so entities are bucketed per value node of their (cached)
// d-neighborhood and each bucket is joined.
func (m *Matcher) appendIndexedRadiusD(out []eqrel.Pair, t graph.TypeID, seen map[eqrel.Pair]bool) []eqrel.Pair {
	buckets := make(map[graph.NodeID][]graph.NodeID)
	for _, e := range m.G.EntitiesOfType(t) {
		m.Neighborhood(e).Each(func(n graph.NodeID) {
			if m.G.IsValue(n) {
				buckets[n] = append(buckets[n], e)
			}
		})
	}
	for _, ents := range buckets {
		for i := 0; i < len(ents); i++ {
			for j := i + 1; j < len(ents); j++ {
				pr := eqrel.MakePair(int32(ents[i]), int32(ents[j]))
				if !seen[pr] {
					seen[pr] = true
					out = append(out, pr)
				}
			}
		}
	}
	return out
}

// ValuePartners returns the candidate partners of entity e: the other
// same-type entities a key on e's type could possibly identify e with.
// On an indexable type the partners are generated from the inverted
// value index — for radius 1 by direct posting-list lookups on e's
// value out-edges, for larger radius by reaching d hops out of each
// value node in e's d-neighborhood — instead of returning the whole
// same-type population. The incremental engine (internal/inc) calls
// this per affected entity when repairing the fixpoint after a delta.
func (m *Matcher) ValuePartners(e graph.NodeID) []graph.NodeID {
	t := m.G.TypeOf(e)
	if !m.hasMatchableKey(t) {
		return nil
	}
	if !m.IndexableType(t) {
		all := m.G.EntitiesOfType(t)
		out := make([]graph.NodeID, 0, len(all)-1)
		for _, q := range all {
			if q != e {
				out = append(out, q)
			}
		}
		return out
	}
	seen := make(map[graph.NodeID]bool)
	var out []graph.NodeID
	add := func(q graph.NodeID) {
		if q == e || seen[q] || !m.G.IsEntity(q) || m.G.TypeOf(q) != t {
			return
		}
		seen[q] = true
		out = append(out, q)
	}
	d := m.dByType[t]
	if d <= 1 {
		for _, edge := range m.G.Out(e) {
			if !m.G.IsValue(edge.To) {
				continue
			}
			for _, q := range m.G.ValueSubjects(edge.Pred, edge.To) {
				add(q)
			}
		}
		return out
	}
	m.Neighborhood(e).Each(func(n graph.NodeID) {
		if !m.G.IsValue(n) {
			return
		}
		m.valueReach(n, d).Each(add)
	})
	return out
}

// valueReach returns the d-hop neighborhood of a value node, memoized
// on lazy matchers (the incremental engine computes partners for a
// small affected region per delta and discards the matcher afterwards;
// non-lazy matchers stay read-only after New, so nothing is cached).
func (m *Matcher) valueReach(v graph.NodeID, d int) *graph.NodeSet {
	k := valueReachKey{v, d}
	if ns, ok := m.valueNbhd[k]; ok {
		return ns
	}
	ns := m.G.Neighborhood(v, d)
	if m.Opts.Lazy {
		m.valueNbhd[k] = ns
	}
	return ns
}

func sortPairs(ps []eqrel.Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].A != ps[j].A {
			return ps[i].A < ps[j].A
		}
		return ps[i].B < ps[j].B
	})
}

// DependencyIndex records, for a fixed candidate list, which candidate
// pairs depend on which entities: pair (e1, e2) depends on (e1', e2')
// if the latter lies within the d-neighbors of the former and has the
// type of an entity variable y of some recursive key defined on the
// former (§4.2). The index is keyed by single entities: when (u, v) is
// identified, the union of Dependents(u) and Dependents(v) is the set
// of pairs whose checks may newly succeed.
type DependencyIndex struct {
	pairs      []eqrel.Pair
	dependents map[graph.NodeID][]int
	// valueSeed marks pairs whose type has at least one value-based key:
	// the L0 seed set of the entity-dependency optimization.
	valueSeed []bool
	// recursiveOnly marks pairs whose type has only recursive keys.
	recursiveOnly []bool
}

// BuildDependencyIndex analyzes the candidate list against the matcher's
// key set.
func (m *Matcher) BuildDependencyIndex(pairs []eqrel.Pair) *DependencyIndex {
	idx := &DependencyIndex{
		pairs:         pairs,
		dependents:    make(map[graph.NodeID][]int),
		valueSeed:     make([]bool, len(pairs)),
		recursiveOnly: make([]bool, len(pairs)),
	}
	registered := make(map[graph.NodeID]bool)
	for i, pr := range pairs {
		a, b := graph.NodeID(pr.A), graph.NodeID(pr.B)
		t := m.G.TypeOf(a)
		typeName := m.G.TypeName(t)
		idx.valueSeed[i] = m.Set.HasValueBasedKeyForType(typeName)
		idx.recursiveOnly[i] = !idx.valueSeed[i]

		// Types of entity variables across the recursive keys on t.
		depTypes := make(map[graph.TypeID]bool)
		for _, ck := range m.byType[t] {
			if !ck.Key.Recursive {
				continue
			}
			for _, tn := range ck.Key.EntityVarTypes() {
				if tid, ok := m.G.TypeByName(tn); ok {
					depTypes[tid] = true
				}
			}
		}
		if len(depTypes) == 0 {
			continue
		}
		// Deduplicate across the two neighborhoods with a per-pair set
		// (reused across pairs, cleared below): an entity in both of
		// them must register this pair only once, regardless of the
		// order or interleaving of registrations.
		clear(registered)
		register := func(n graph.NodeID) {
			if n == a || n == b || registered[n] {
				return
			}
			if !m.G.IsEntity(n) || !depTypes[m.G.TypeOf(n)] {
				return
			}
			registered[n] = true
			idx.dependents[n] = append(idx.dependents[n], i)
		}
		m.Neighborhood(a).Each(register)
		m.Neighborhood(b).Each(register)
	}
	return idx
}

// Pairs returns the candidate list the index was built over.
func (d *DependencyIndex) Pairs() []eqrel.Pair { return d.pairs }

// Links counts the entity→pair dependency registrations: the dep-edge
// volume of the product graph in §5.1.
func (d *DependencyIndex) Links() int {
	n := 0
	for _, ds := range d.dependents {
		n += len(ds)
	}
	return n
}

// Dependents returns the indices (into Pairs) of candidate pairs that
// depend on entity n.
func (d *DependencyIndex) Dependents(n graph.NodeID) []int { return d.dependents[n] }

// HasValueSeed reports whether pair i belongs to the L0 seed set: its
// type has a value-based key, so it can be identified without waiting
// for any other pair.
func (d *DependencyIndex) HasValueSeed(i int) bool { return d.valueSeed[i] }

// RecursiveOnly reports whether pair i can only be identified by
// recursive keys.
func (d *DependencyIndex) RecursiveOnly(i int) bool { return d.recursiveOnly[i] }
