package match

import (
	"cmp"
	"slices"
	"sort"

	"graphkeys/internal/engine"
	"graphkeys/internal/eqrel"
	"graphkeys/internal/graph"
)

// This file builds the candidate set L of §4.1 — all entity pairs of the
// same type on which at least one key is defined — its pairing-filtered
// variant of §4.2, and the entity-pair dependency index used by the
// entity-dependency and incremental-checking optimizations (§4.2) and by
// the dep edges of the product graph (§5.1).
//
// Two constructions of L are provided. Candidates is the literal
// definition: the full C(n, 2) sweep over every keyed type's
// population. CandidatesIndexed generates the same chase(G, Σ) from a
// usually far smaller L by joining the graph's inverted value index:
// under exact value equality, a witness of a key with a value anchor (a
// value variable or constant) must bind that anchor to a single
// interned value node lying in the d-neighborhood of both sides
// (locality, §4.1), so only same-type pairs sharing such a value node
// can ever be identified. Types whose keys do not all carry a value
// anchor, or matchers with a custom ValueEq (where distinct value nodes
// can compare equal), fall back to the full sweep per type.

// Candidates returns the unfiltered candidate set L: every unordered
// pair of distinct same-type entities whose type has a key. The result
// is sorted for determinism.
func (m *Matcher) Candidates() []eqrel.Pair {
	var out []eqrel.Pair
	for _, t := range m.KeyedTypes() {
		ents := m.G.EntitiesOfType(t)
		for i := 0; i < len(ents); i++ {
			for j := i + 1; j < len(ents); j++ {
				out = append(out, eqrel.MakePair(int32(ents[i]), int32(ents[j])))
			}
		}
	}
	sortPairs(out)
	return out
}

// CandidatesPaired returns L filtered by the pairing necessary
// condition (§4.2 "Reducing L"): pairs no key can pair are dropped.
func (m *Matcher) CandidatesPaired() []eqrel.Pair {
	return m.FilterPaired(m.Candidates())
}

// FilterPaired filters a candidate list by the pairing necessary
// condition (§4.2 "Reducing L"), in place.
func (m *Matcher) FilterPaired(all []eqrel.Pair) []eqrel.Pair {
	out := all[:0]
	for _, pr := range all {
		if m.CanBePaired(graph.NodeID(pr.A), graph.NodeID(pr.B)) {
			out = append(out, pr)
		}
	}
	return out
}

// hasMatchableKey reports whether any key on t can match at all in the
// compiled graph; a type whose keys all reference absent predicates,
// types or constants needs no candidates.
func (m *Matcher) hasMatchableKey(t graph.TypeID) bool {
	for _, ck := range m.byType[t] {
		if ck.Matchable() {
			return true
		}
	}
	return false
}

// IndexableType reports whether candidate generation for type t may
// join the inverted value index instead of sweeping all same-type
// pairs: value equality must be exact (no custom ValueEq, so equal
// literals are one interned node) and every matchable key on t must
// carry a value anchor. A single anchor-free (purely entity-variable)
// key forces the full sweep, since its witnesses need not share any
// value node. For radius-1 types the anchors must additionally hang
// off x itself (they always do when the pattern radius is <= 1 —
// values are never subjects, so a value two pattern hops from x would
// make the radius 2 — but the compiler records the property rather
// than assuming it).
func (m *Matcher) IndexableType(t graph.TypeID) bool {
	if m.Opts.ValueEq != nil {
		return false
	}
	for _, ck := range m.byType[t] {
		if !ck.Matchable() {
			continue
		}
		if !ck.HasValueAnchor() {
			return false
		}
		if m.dByType[t] <= 1 && (len(ck.xAnchors) == 0 || ck.nonXAnchor) {
			return false
		}
	}
	return true
}

// CandidatesIndexed returns a candidate set L generated through the
// graph's inverted value index. It is a subset of Candidates()
// containing every pair any chasing sequence can directly identify, so
// running the chase (or any engine) over it yields exactly
// chase(G, Σ); the per-type fallback keeps it correct for custom
// ValueEq and anchor-free keys. The result is sorted for determinism.
func (m *Matcher) CandidatesIndexed() []eqrel.Pair {
	var out []eqrel.Pair
	// The dedup map only serves radius-d bucket joins (radius-1 and
	// sweep types emit each pair exactly once); allocate it when the
	// first radius-d type actually needs it.
	var seen map[eqrel.Pair]bool
	for _, t := range m.KeyedTypes() {
		if !m.hasMatchableKey(t) {
			continue // no key can fire; no candidate can be identified
		}
		if !m.IndexableType(t) {
			ents := m.G.EntitiesOfType(t)
			for i := 0; i < len(ents); i++ {
				for j := i + 1; j < len(ents); j++ {
					out = append(out, eqrel.MakePair(int32(ents[i]), int32(ents[j])))
				}
			}
			continue
		}
		if m.dByType[t] <= 1 {
			out = m.appendIndexedRadius1(out, t)
		} else {
			if seen == nil {
				seen = make(map[eqrel.Pair]bool)
			}
			out = m.appendIndexedRadiusD(out, t, seen)
		}
	}
	sortPairs(out)
	return out
}

// appendIndexedRadius1 generates candidates for a radius-1 type. With
// d = 1 every value anchor is a direct object of x (values are never
// subjects), so a witness of key Q at (e1, e2) binds each anchor
// (x, p, a) of Q to one value node shared by both sides: per key, the
// partner set of e is the merge-join intersection, across Q's anchors,
// of the (sorted) posting lists e can reach on that anchor's
// predicate. Partner sets union across keys, and each unordered pair
// is emitted once from its smaller side, so no dedup map is needed.
func (m *Matcher) appendIndexedRadius1(out []eqrel.Pair, t graph.TypeID) []eqrel.Pair {
	for _, e := range m.G.EntitiesOfType(t) {
		var partners []graph.NodeID
		for _, ck := range m.byType[t] {
			if !ck.Matchable() {
				continue
			}
			partners = mergeUnion(partners, m.radius1KeyPartners(ck, e))
		}
		// partners is sorted: skip ahead to the first q > e.
		i := sort.Search(len(partners), func(i int) bool { return partners[i] > e })
		for _, q := range partners[i:] {
			// Posting subjects are live entities by construction
			// (tombstoning an entity removes its incident triples, and
			// with them its postings); only the type needs checking.
			if m.G.TypeOf(q) == t {
				out = append(out, eqrel.MakePair(int32(e), int32(q)))
			}
		}
	}
	return out
}

// radius1KeyPartners returns the sorted candidate partners of e for a
// single radius-1 key: the intersection, over the key's x-incident
// value anchors, of the subjects sharing an anchor value with e. A
// constant anchor requires both sides to carry the constant itself, so
// its posting list joins in directly (and e must appear in it); a
// value-variable anchor admits any value node e reaches on the
// anchor's predicate, so those posting lists merge-union first. An
// empty result means no pair (e, q) can be directly identified by this
// key.
//
// The join is planned greedily, statistics-free ("When Greedy Beats
// Optimal", PAPERS.md): constant anchors check first — a binary-search
// membership probe is the cheapest possible rejection — then anchors
// intersect cheapest-first by total posting-list length, so the
// accumulator shrinks as fast as the available lists allow before the
// expensive merges run. Intersection commutes and the reject
// conditions are order-independent, so the result is exactly the
// pattern-order join's.
func (m *Matcher) radius1KeyPartners(ck *CompiledKey, e graph.NodeID) []graph.NodeID {
	if len(ck.xAnchors) == 0 {
		return nil
	}
	ob := m.Opts.Obs
	// Phase 1: membership-probe every constant anchor before pulling
	// any value-variable posting list — a miss rejects e outright.
	for _, a := range ck.xAnchors {
		if a.constID == graph.NoNode {
			continue
		}
		if ob != nil {
			ob.PostingsScanned.Inc()
		}
		if !containsSorted(m.G.ValueSubjects(a.pred, a.constID), e) {
			return nil // e lacks the constant attribute itself
		}
	}
	// Phase 2: gather each anchor's posting lists (unmerged) and its
	// total length as the greedy cost estimate.
	type anchorJoin struct {
		lists [][]graph.NodeID
		cost  int
	}
	joins := make([]anchorJoin, 0, len(ck.xAnchors))
	for _, a := range ck.xAnchors {
		var j anchorJoin
		if a.constID != graph.NoNode {
			lst := m.G.ValueSubjects(a.pred, a.constID)
			j.lists = append(j.lists, lst)
			j.cost = len(lst)
		} else {
			for _, edge := range m.G.Out(e) {
				if edge.Pred != a.pred || !m.G.IsValue(edge.To) {
					continue
				}
				if ob != nil {
					ob.PostingsScanned.Inc()
				}
				lst := m.G.ValueSubjects(edge.Pred, edge.To)
				j.lists = append(j.lists, lst)
				j.cost += len(lst)
			}
		}
		if j.cost == 0 {
			return nil // anchor admits no subject at all
		}
		joins = append(joins, j)
	}
	// Phase 3: intersect cheapest-first. Each anchor's own lists
	// union smallest-first for the same reason.
	slices.SortStableFunc(joins, func(a, b anchorJoin) int { return a.cost - b.cost })
	var acc []graph.NodeID
	for ji, j := range joins {
		lst := foldUnion(j.lists)
		if ji == 0 {
			acc = lst
		} else {
			acc = mergeIntersect(acc, lst)
		}
		if len(acc) == 0 {
			return nil
		}
	}
	return acc
}

// foldUnion merge-unions the sorted lists smallest-first (cheapest
// merges run while the accumulator is small; union commutes, so the
// fold order never changes the result). The lists slice is reordered
// in place; the lists themselves are never mutated.
func foldUnion(lists [][]graph.NodeID) []graph.NodeID {
	slices.SortStableFunc(lists, func(a, b []graph.NodeID) int { return len(a) - len(b) })
	var acc []graph.NodeID
	for _, l := range lists {
		acc = mergeUnion(acc, l)
	}
	return acc
}

// mergeUnion merge-joins two sorted NodeID lists into their sorted
// union. It never mutates its inputs (posting lists are graph-owned);
// when one side is empty the other is returned as is.
func mergeUnion(a, b []graph.NodeID) []graph.NodeID {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]graph.NodeID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// mergeIntersect merge-joins two sorted NodeID lists into their sorted
// intersection, without mutating either.
func mergeIntersect(a, b []graph.NodeID) []graph.NodeID {
	var out []graph.NodeID
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case b[j] < a[i]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// containsSorted reports whether x occurs in the sorted list.
func containsSorted(xs []graph.NodeID, x graph.NodeID) bool {
	i := sort.Search(len(xs), func(i int) bool { return xs[i] >= x })
	return i < len(xs) && xs[i] == x
}

// appendIndexedRadiusD generates candidates for a type with radius
// d > 1, where a value anchor may sit several hops from x: a witness
// still binds it to a single value node inside the d-neighborhood of
// both sides, so entities are bucketed per value node of their (cached)
// d-neighborhood and each bucket is joined.
func (m *Matcher) appendIndexedRadiusD(out []eqrel.Pair, t graph.TypeID, seen map[eqrel.Pair]bool) []eqrel.Pair {
	buckets := make(map[graph.NodeID][]graph.NodeID)
	for _, e := range m.G.EntitiesOfType(t) {
		m.Neighborhood(e).Each(func(n graph.NodeID) {
			if m.G.IsValue(n) {
				buckets[n] = append(buckets[n], e)
			}
		})
	}
	for _, ents := range buckets {
		for i := 0; i < len(ents); i++ {
			for j := i + 1; j < len(ents); j++ {
				pr := eqrel.MakePair(int32(ents[i]), int32(ents[j]))
				if !seen[pr] {
					seen[pr] = true
					out = append(out, pr)
				}
			}
		}
	}
	return out
}

// ValuePartners returns the candidate partners of entity e: the other
// same-type entities a key on e's type could possibly identify e with,
// ascending. On an indexable type the partners are generated from the
// inverted value index — for radius 1 by direct posting-list lookups
// on e's value out-edges, for larger radius by reaching d hops out of
// each value node in e's d-neighborhood — instead of returning the
// whole same-type population. The incremental engine (internal/inc)
// calls this per affected entity when repairing the fixpoint after a
// delta; it is the materialized form of PartnerStream.
func (m *Matcher) ValuePartners(e graph.NodeID) []graph.NodeID {
	return slices.Collect(m.PartnerStream(e))
}

// valueReach returns the d-hop neighborhood of a value node, memoized
// on lazy matchers (the incremental engine computes partners for a
// small affected region per delta and discards the matcher afterwards;
// non-lazy matchers stay read-only after New, so nothing is cached).
func (m *Matcher) valueReach(v graph.NodeID, d int) *graph.NodeSet {
	k := valueReachKey{v, d}
	if !m.Opts.Lazy {
		return m.G.Neighborhood(v, d)
	}
	m.lazyMu.Lock()
	ns, ok := m.valueNbhd[k]
	m.lazyMu.Unlock()
	if ok {
		return ns
	}
	ns = m.G.Neighborhood(v, d)
	m.lazyMu.Lock()
	m.valueNbhd[k] = ns
	m.lazyMu.Unlock()
	return ns
}

// sortPairs orders a candidate list by (A, B) — the global candidate
// order every builder and the streaming pipeline agree on. SortFunc
// monomorphizes over eqrel.Pair, where sort.Slice went through
// reflect.Swapper on every element move (see BenchmarkSortPairs).
func sortPairs(ps []eqrel.Pair) {
	slices.SortFunc(ps, comparePairs)
}

// comparePairs compares by (A, B) through one packed uint64: node IDs
// are non-negative int32, so the lexicographic order survives the
// pack and the hot comparator is a single branch.
func comparePairs(a, b eqrel.Pair) int {
	return cmp.Compare(packPair(a), packPair(b))
}

func packPair(p eqrel.Pair) uint64 {
	return uint64(uint32(p.A))<<32 | uint64(uint32(p.B))
}

// DependencyIndex records, for a fixed candidate list, which candidate
// pairs depend on which entities: pair (e1, e2) depends on (e1', e2')
// if the latter lies within the d-neighbors of the former and has the
// type of an entity variable y of some recursive key defined on the
// former (§4.2). The index is keyed by single entities: when (u, v) is
// identified, the union of Dependents(u) and Dependents(v) is the set
// of pairs whose checks may newly succeed.
type DependencyIndex struct {
	pairs      []eqrel.Pair
	dependents map[graph.NodeID][]int
	// valueSeed marks pairs whose type has at least one value-based key:
	// the L0 seed set of the entity-dependency optimization.
	valueSeed []bool
	// recursiveOnly marks pairs whose type has only recursive keys.
	recursiveOnly []bool
}

// depTypeInfo is the per-type metadata the dependency analysis needs,
// hoisted out of the per-pair loop: the L0-seed flag and the entity
// variable types of the type's recursive keys.
type depTypeInfo struct {
	valueSeed bool
	depTypes  map[graph.TypeID]bool
}

func (m *Matcher) depTypeInfos() map[graph.TypeID]depTypeInfo {
	infos := make(map[graph.TypeID]depTypeInfo, len(m.byType))
	for t, cks := range m.byType {
		info := depTypeInfo{
			valueSeed: m.Set.HasValueBasedKeyForType(m.G.TypeName(t)),
			depTypes:  make(map[graph.TypeID]bool),
		}
		for _, ck := range cks {
			if !ck.Key.Recursive {
				continue
			}
			for _, tn := range ck.Key.EntityVarTypes() {
				if tid, ok := m.G.TypeByName(tn); ok {
					info.depTypes[tid] = true
				}
			}
		}
		infos[t] = info
	}
	return infos
}

// BuildDependencyIndex analyzes the candidate list against the
// matcher's key set, sequentially.
func (m *Matcher) BuildDependencyIndex(pairs []eqrel.Pair) *DependencyIndex {
	return m.BuildDependencyIndexParallel(pairs, 1)
}

// BuildDependencyIndexParallel is BuildDependencyIndex with the
// neighborhood scans — the expensive part — computed once per distinct
// entity (candidate pairs share sides heavily: n entities induce up to
// n(n-1)/2 pairs) and fanned out across workers. A pair's dependency
// entities are then the merge-join union of its two sides' sorted
// contributions; the merge into the entity-keyed index runs
// sequentially in pair order, so the dependent lists are identical to
// the sequential build's. On a lazy matcher the scans run
// sequentially regardless of workers: Neighborhood fills the lazy
// cache on miss, which is not safe concurrently.
func (m *Matcher) BuildDependencyIndexParallel(pairs []eqrel.Pair, workers int) *DependencyIndex {
	if m.Opts.Lazy {
		workers = 1
	}
	idx := &DependencyIndex{
		pairs:         pairs,
		dependents:    make(map[graph.NodeID][]int),
		valueSeed:     make([]bool, len(pairs)),
		recursiveOnly: make([]bool, len(pairs)),
	}
	infos := m.depTypeInfos()

	// Distinct pair sides, in first-appearance order.
	sideIdx := make(map[graph.NodeID]int)
	var sides []graph.NodeID
	for _, pr := range pairs {
		for _, n := range [2]graph.NodeID{graph.NodeID(pr.A), graph.NodeID(pr.B)} {
			if _, ok := sideIdx[n]; !ok {
				sideIdx[n] = len(sides)
				sides = append(sides, n)
			}
		}
	}

	// Per-side contribution: the entities of a dependency type in the
	// side's d-neighborhood, ascending (Each enumerates in ID order).
	sideDeps := make([][]graph.NodeID, len(sides))
	engine.Parallel(m.Opts.Eng, workers, len(sides), func(i int) {
		e := sides[i]
		info := infos[m.G.TypeOf(e)]
		if len(info.depTypes) == 0 {
			return
		}
		var deps []graph.NodeID
		m.Neighborhood(e).Each(func(n graph.NodeID) {
			if t, ok := m.G.EntityType(n); ok && info.depTypes[t] {
				deps = append(deps, n)
			}
		})
		sideDeps[i] = deps
	})

	var scratch []graph.NodeID
	for i, pr := range pairs {
		a, b := graph.NodeID(pr.A), graph.NodeID(pr.B)
		info := infos[m.G.TypeOf(a)]
		idx.valueSeed[i] = info.valueSeed
		idx.recursiveOnly[i] = !info.valueSeed
		if len(info.depTypes) == 0 {
			continue
		}
		da, db := sideDeps[sideIdx[a]], sideDeps[sideIdx[b]]
		// Merge-join union of the two sorted sides, excluding the pair's
		// own members: an entity in both neighborhoods registers once.
		scratch = scratch[:0]
		x, y := 0, 0
		for x < len(da) || y < len(db) {
			var n graph.NodeID
			switch {
			case y == len(db) || (x < len(da) && da[x] < db[y]):
				n = da[x]
				x++
			case x == len(da) || db[y] < da[x]:
				n = db[y]
				y++
			default:
				n = da[x]
				x++
				y++
			}
			if n != a && n != b {
				scratch = append(scratch, n)
			}
		}
		for _, n := range scratch {
			idx.dependents[n] = append(idx.dependents[n], i)
		}
	}
	return idx
}

// Pairs returns the candidate list the index was built over.
func (d *DependencyIndex) Pairs() []eqrel.Pair { return d.pairs }

// Links counts the entity→pair dependency registrations: the dep-edge
// volume of the product graph in §5.1.
func (d *DependencyIndex) Links() int {
	n := 0
	for _, ds := range d.dependents {
		n += len(ds)
	}
	return n
}

// Dependents returns the indices (into Pairs) of candidate pairs that
// depend on entity n.
func (d *DependencyIndex) Dependents(n graph.NodeID) []int { return d.dependents[n] }

// HasValueSeed reports whether pair i belongs to the L0 seed set: its
// type has a value-based key, so it can be identified without waiting
// for any other pair.
func (d *DependencyIndex) HasValueSeed(i int) bool { return d.valueSeed[i] }

// RecursiveOnly reports whether pair i can only be identified by
// recursive keys.
func (d *DependencyIndex) RecursiveOnly(i int) bool { return d.recursiveOnly[i] }
