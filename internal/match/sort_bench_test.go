package match

import (
	"math/rand"
	"sort"
	"testing"

	"graphkeys/internal/eqrel"
)

// BenchmarkSortPairs quantifies the sortPairs satellite fix: the old
// reflection-based sort.Slice (reflect.Swapper per element move, a
// closure call per comparison) against the monomorphized
// slices.SortFunc the builders now use. Run with:
//
//	go test -run - -bench BenchmarkSortPairs ./internal/match/
func BenchmarkSortPairs(b *testing.B) {
	const n = 10000
	rng := rand.New(rand.NewSource(42))
	base := make([]eqrel.Pair, n)
	for i := range base {
		base[i] = eqrel.MakePair(rng.Int31n(5000), rng.Int31n(5000))
	}
	scratch := make([]eqrel.Pair, n)

	b.Run("sort.Slice", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			copy(scratch, base)
			sort.Slice(scratch, func(i, j int) bool {
				if scratch[i].A != scratch[j].A {
					return scratch[i].A < scratch[j].A
				}
				return scratch[i].B < scratch[j].B
			})
		}
	})
	b.Run("slices.SortFunc", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			copy(scratch, base)
			sortPairs(scratch)
		}
	})
}
