package match

import (
	"testing"

	"graphkeys/internal/fixtures"
	"graphkeys/internal/graph"
	"graphkeys/internal/keys"
)

func partnerLabels(g *graph.Graph, ps []graph.NodeID) map[string]bool {
	out := make(map[string]bool)
	for _, p := range ps {
		out[g.Label(p)] = true
	}
	return out
}

// TestValuePartnersRadius1 checks the pure posting-list path: partners
// of an entity are exactly the same-type entities sharing an out-edge
// (p, v) to an interned value node.
func TestValuePartnersRadius1(t *testing.T) {
	g := fixtures.MusicGraph()
	m, err := New(g, fixtures.MusicKeys(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := partnerLabels(g, m.ValuePartners(fixtures.Node(g, "alb1")))
	// alb2 and alb3 share name_of "Anthology 2"; artists are not
	// same-type and must not appear.
	if len(got) != 2 || !got["alb2"] || !got["alb3"] {
		t.Errorf("partners(alb1) = %v, want {alb2, alb3}", got)
	}
	got = partnerLabels(g, m.ValuePartners(fixtures.Node(g, "art3")))
	// art3's name "John Farnham" is unique: no partner shares a value.
	if len(got) != 0 {
		t.Errorf("partners(art3) = %v, want none", got)
	}
	got = partnerLabels(g, m.ValuePartners(fixtures.Node(g, "art1")))
	if len(got) != 1 || !got["art2"] {
		t.Errorf("partners(art1) = %v, want {art2}", got)
	}
}

// TestValuePartnersRadius2 checks the d > 1 path: the shared value sits
// two hops out, behind a wildcard entity.
func TestValuePartnersRadius2(t *testing.T) {
	g := graph.New()
	a := g.MustAddEntity("a", "T")
	b := g.MustAddEntity("b", "T")
	c := g.MustAddEntity("c", "T")
	ma := g.MustAddEntity("ma", "M")
	mb := g.MustAddEntity("mb", "M")
	mc := g.MustAddEntity("mc", "M")
	shared := g.AddValue("shared")
	g.MustAddTriple(a, "p", ma)
	g.MustAddTriple(b, "p", mb)
	g.MustAddTriple(c, "p", mc)
	g.MustAddTriple(ma, "q", shared)
	g.MustAddTriple(mb, "q", shared)
	g.MustAddTriple(mc, "q", g.AddValue("other"))
	set, err := keys.ParseString("key K for T {\n    x -p-> _m:M\n    _m:M -q-> n*\n}")
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(g, set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d := m.RadiusFor(g.TypeOf(a)); d != 2 {
		t.Fatalf("radius = %d, want 2", d)
	}
	got := partnerLabels(g, m.ValuePartners(a))
	if len(got) != 1 || !got["b"] {
		t.Errorf("partners(a) = %v, want {b}", got)
	}
}

// TestValuePartnersFallback: a type with an anchor-free key (or a
// custom ValueEq) must fall back to every other same-type entity.
func TestValuePartnersFallback(t *testing.T) {
	g := graph.New()
	a := g.MustAddEntity("a", "T")
	b := g.MustAddEntity("b", "T")
	c := g.MustAddEntity("c", "T")
	u := g.MustAddEntity("u", "U")
	g.MustAddTriple(a, "owns", u)
	g.MustAddTriple(b, "owns", u)
	_ = c
	set, err := keys.ParseString("key K for T {\n    x -owns-> _:U\n}")
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(g, set, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.IndexableType(g.TypeOf(a)) {
		t.Fatal("anchor-free key reported indexable")
	}
	got := partnerLabels(g, m.ValuePartners(a))
	if len(got) != 2 || !got["b"] || !got["c"] {
		t.Errorf("partners(a) = %v, want {b, c}", got)
	}

	// Same graph with an anchored key but a custom ValueEq: still not
	// indexable, because distinct nodes may compare equal.
	g2 := fixtures.MusicGraph()
	m2, err := New(g2, fixtures.MusicKeys(), Options{ValueEq: func(x, y string) bool { return true }})
	if err != nil {
		t.Fatal(err)
	}
	if m2.IndexableType(g2.TypeOf(fixtures.Node(g2, "alb1"))) {
		t.Fatal("custom ValueEq reported indexable")
	}
}

// TestDependencyIndexOverlappingNeighborhoods: when the two sides of a
// candidate pair share d-neighborhood entities (here a single artist
// recorded on both albums), the dependency index must register the
// pair once per entity — order-independently — not once per
// neighborhood it appears in.
func TestDependencyIndexOverlappingNeighborhoods(t *testing.T) {
	g := graph.New()
	alb1 := g.MustAddEntity("alb1", "album")
	alb2 := g.MustAddEntity("alb2", "album")
	art1 := g.MustAddEntity("art1", "artist")
	name := g.AddValue("Anthology 2")
	g.MustAddTriple(alb1, "name_of", name)
	g.MustAddTriple(alb2, "name_of", name)
	// art1 lies in the 1-hop neighborhood of BOTH albums.
	g.MustAddTriple(alb1, "recorded_by", art1)
	g.MustAddTriple(alb2, "recorded_by", art1)
	g.MustAddTriple(art1, "name_of", g.AddValue("The Beatles"))

	m, err := New(g, fixtures.MusicKeys(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	cands := m.Candidates()
	idx := m.BuildDependencyIndex(cands)
	ds := idx.Dependents(art1)
	if len(ds) != 1 {
		t.Fatalf("Dependents(art1) = %v, want exactly one registration of the (alb1, alb2) pair", ds)
	}
	pr := cands[ds[0]]
	if graph.NodeID(pr.A) != alb1 || graph.NodeID(pr.B) != alb2 {
		t.Errorf("Dependents(art1) points at pair (%d, %d), want (alb1, alb2)", pr.A, pr.B)
	}
	// No dependents list anywhere may contain duplicates.
	for n := 0; n < g.NumNodes(); n++ {
		seen := make(map[int]bool)
		for _, i := range idx.Dependents(graph.NodeID(n)) {
			if seen[i] {
				t.Fatalf("Dependents(%d) registers pair %d twice", n, i)
			}
			seen[i] = true
		}
	}
}
