package match

import "graphkeys/internal/graph"

// This file implements the optimization machinery of §4.2: the pairing
// relation P^Q (Proposition 9), a necessary condition for a pair to be
// identified by a key, used both to filter the candidate set L and to
// shrink the d-neighbors (G1^d, G2^d) to the nodes that participate in
// the maximum pairing relation.

// nodePair is a pair (s1, s2) with s1 drawn from G1^d and s2 from G2^d.
type nodePair struct{ a, b graph.NodeID }

// Pairing is the maximum pairing relation of one key at one entity
// pair: for each pattern node q, the set of node pairs (s1, s2) such
// that (s1, s2, q) ∈ P^Q.
type Pairing struct {
	ck  *CompiledKey
	rel []map[nodePair]bool
}

// Paired reports whether (e1, e2, x) survived the fixpoint: the
// necessary condition of Proposition 9(a).
func (p *Pairing) Paired(e1, e2 graph.NodeID) bool {
	return p != nil && p.rel[p.ck.x][nodePair{e1, e2}]
}

// Nodes1 collects the G1-side nodes appearing anywhere in the relation;
// Nodes2 the G2-side nodes. These induce the reduced d-neighbors.
func (p *Pairing) Nodes1() *graph.NodeSet {
	out := graph.NewNodeSet()
	for _, m := range p.rel {
		for np := range m {
			out.Add(np.a)
		}
	}
	return out
}

// Nodes2 is the G2-side counterpart of Nodes1.
func (p *Pairing) Nodes2() *graph.NodeSet {
	out := graph.NewNodeSet()
	for _, m := range p.rel {
		for np := range m {
			out.Add(np.b)
		}
	}
	return out
}

// EachPair calls fn once per (s1, s2) occurrence in the relation (a
// pair bound at several pattern nodes is reported for each).
func (p *Pairing) EachPair(fn func(a, b graph.NodeID)) {
	if p == nil {
		return
	}
	for _, m := range p.rel {
		for np := range m {
			fn(np.a, np.b)
		}
	}
}

// Size returns the number of tuples in the relation.
func (p *Pairing) Size() int {
	n := 0
	for _, m := range p.rel {
		n += len(m)
	}
	return n
}

// ComputePairing builds the maximum pairing relation of ck at (e1, e2)
// over the d-neighbors (g1d, g2d) by greatest-fixpoint pruning: start
// from every locally compatible tuple and repeatedly delete tuples that
// lose edge support, as in Proposition 9(b). The result is nil if the
// key is unmatchable in this graph.
func (m *Matcher) ComputePairing(ck *CompiledKey, e1, e2 graph.NodeID, g1d, g2d *graph.NodeSet) *Pairing {
	if !ck.matchable {
		return nil
	}
	g := m.G
	p := &Pairing{ck: ck, rel: make([]map[nodePair]bool, len(ck.nodes))}

	// Initialize with locally compatible tuples. For entity-like pattern
	// nodes we enumerate entities of the right type within each side;
	// for value variables, pairs of values with equal labels (equal
	// literals share a node, so (v, v) under exact equality); for
	// constants, the single constant node.
	for q, n := range ck.nodes {
		p.rel[q] = make(map[nodePair]bool)
		switch n.kind {
		case kDesignated, kEntityVar, kWildcard:
			side1 := typedEntitiesIn(g, g1d, n.typ)
			side2 := typedEntitiesIn(g, g2d, n.typ)
			for _, a := range side1 {
				for _, b := range side2 {
					p.rel[q][nodePair{a, b}] = true
				}
			}
		case kValueVar:
			// Candidate values are those adjacent (with the right
			// predicate) to something; enumerating all value pairs would
			// be wasteful and, under exact equality, only (v, v) pairs
			// qualify. With a custom ValueEq we fall back to scanning
			// value nodes in the two neighborhoods.
			if m.Opts.ValueEq == nil {
				addValuePairsExact(g, g1d, g2d, p.rel[q])
			} else {
				addValuePairsCustom(m, g1d, g2d, p.rel[q])
			}
		case kConst:
			c := n.constID
			if g1d.Contains(c) && g2d.Contains(c) {
				p.rel[q][nodePair{c, c}] = true
			}
		}
	}

	// Greatest fixpoint: delete tuples lacking support for some incident
	// pattern triple; iterate to stability.
	for changed := true; changed; {
		changed = false
		for q := range ck.nodes {
			for np := range p.rel[q] {
				if !m.pairingSupported(p, q, np, g1d, g2d) {
					delete(p.rel[q], np)
					changed = true
				}
			}
		}
	}
	return p
}

// typedEntitiesIn lists the entities of the given type inside the node
// set, iterating whichever side is cheaper (the set's members for a
// d-neighbor, the type index for a nil set meaning the whole graph).
func typedEntitiesIn(g *graph.Graph, set *graph.NodeSet, typ graph.TypeID) []graph.NodeID {
	if set == nil {
		return g.EntitiesOfType(typ)
	}
	var out []graph.NodeID
	set.Each(func(n graph.NodeID) {
		if g.IsEntity(n) && g.TypeOf(n) == typ {
			out = append(out, n)
		}
	})
	return out
}

func addValuePairsExact(g *graph.Graph, g1d, g2d *graph.NodeSet, rel map[nodePair]bool) {
	// Under exact equality, equal literals are one node; (v, v) with v
	// in both neighborhoods are the only candidates. Enumerate the
	// cheaper side (a nil set means the whole graph).
	small, other := g1d, g2d
	if small == nil {
		small, other = g2d, g1d
	}
	if small == nil {
		for i := 0; i < g.NumNodes(); i++ {
			if v := graph.NodeID(i); g.IsValue(v) {
				rel[nodePair{v, v}] = true
			}
		}
		return
	}
	small.Each(func(v graph.NodeID) {
		if g.IsValue(v) && other.Contains(v) {
			rel[nodePair{v, v}] = true
		}
	})
}

func addValuePairsCustom(m *Matcher, g1d, g2d *graph.NodeSet, rel map[nodePair]bool) {
	side1 := valueNodesIn(m.G, g1d)
	side2 := valueNodesIn(m.G, g2d)
	for _, a := range side1 {
		for _, b := range side2 {
			if m.Opts.valueEq(m.G.Label(a), m.G.Label(b)) {
				rel[nodePair{a, b}] = true
			}
		}
	}
}

func valueNodesIn(g *graph.Graph, set *graph.NodeSet) []graph.NodeID {
	var out []graph.NodeID
	if set == nil {
		for i := 0; i < g.NumNodes(); i++ {
			if v := graph.NodeID(i); g.IsValue(v) {
				out = append(out, v)
			}
		}
		return out
	}
	set.Each(func(v graph.NodeID) {
		if g.IsValue(v) {
			out = append(out, v)
		}
	})
	return out
}

// pairingSupported checks the edge-support condition of the pairing
// relation for tuple (np.a, np.b, q): every pattern triple incident to q
// must have at least one supporting edge pair whose other endpoint is
// still in the relation.
func (m *Matcher) pairingSupported(p *Pairing, q int, np nodePair, g1d, g2d *graph.NodeSet) bool {
	g := m.G
	for _, ti := range p.ck.incident[q] {
		t := p.ck.triples[ti]
		if t.subj == q {
			if !hasSupport(g, np.a, np.b, t.pred, true, g1d, g2d, p.rel[t.obj]) {
				return false
			}
		}
		if t.obj == q {
			if !hasSupport(g, np.a, np.b, t.pred, false, g1d, g2d, p.rel[t.subj]) {
				return false
			}
		}
	}
	return true
}

// hasSupport looks for edges (a, pred, o1) in G1^d and (b, pred, o2) in
// G2^d (outgoing == true; otherwise incoming) with (o1, o2) in rel.
func hasSupport(g *graph.Graph, a, b graph.NodeID, pred graph.PredID, outgoing bool, g1d, g2d *graph.NodeSet, rel map[nodePair]bool) bool {
	edges := func(n graph.NodeID) []graph.Edge {
		if outgoing {
			return g.Out(n)
		}
		return g.In(n)
	}
	for _, ea := range edges(a) {
		if ea.Pred != pred || !g1d.Contains(ea.To) {
			continue
		}
		for _, eb := range edges(b) {
			if eb.Pred != pred || !g2d.Contains(eb.To) {
				continue
			}
			if rel[nodePair{ea.To, eb.To}] {
				return true
			}
		}
	}
	return false
}

// QuickPaired is the x-local slice of the pairing condition, checked in
// O(deg(e1)+deg(e2)) before the full fixpoint: every pattern triple
// incident to x must have locally compatible support at both entities —
// a shared value for value variables, the constant edge for constants,
// a typed entity neighbor for entity-like nodes. It is a necessary
// condition for Paired and therefore for identification; on workloads
// dominated by hopeless same-type pairs it rejects almost all of L
// without ever building a pairing relation.
func (m *Matcher) QuickPaired(ck *CompiledKey, e1, e2 graph.NodeID) bool {
	if !ck.matchable {
		return false
	}
	g := m.G
	for _, ti := range ck.incident[ck.x] {
		t := ck.triples[ti]
		if t.subj == ck.x && t.obj == ck.x {
			if !g.HasTriple(e1, t.pred, e1) || !g.HasTriple(e2, t.pred, e2) {
				return false
			}
			continue
		}
		if t.subj == ck.x {
			if !m.quickEdge(e1, e2, t.pred, true, ck.nodes[t.obj]) {
				return false
			}
		}
		if t.obj == ck.x {
			if !m.quickEdge(e1, e2, t.pred, false, ck.nodes[t.subj]) {
				return false
			}
		}
	}
	return true
}

// quickEdge checks that both entities have a pred-edge (outgoing or
// incoming) compatible with the pattern node at the other end.
func (m *Matcher) quickEdge(e1, e2 graph.NodeID, pred graph.PredID, outgoing bool, n compiledNode) bool {
	g := m.G
	edges := func(e graph.NodeID) []graph.Edge {
		if outgoing {
			return g.Out(e)
		}
		return g.In(e)
	}
	switch n.kind {
	case kConst:
		// Constants are objects only (validated), so outgoing holds.
		return outgoing && g.HasTriple(e1, pred, n.constID) && g.HasTriple(e2, pred, n.constID)
	case kValueVar:
		if !outgoing {
			return false // values cannot be subjects
		}
		for _, ea := range g.Out(e1) {
			if ea.Pred != pred || !g.IsValue(ea.To) {
				continue
			}
			if m.Opts.ValueEq == nil {
				if g.HasTriple(e2, pred, ea.To) {
					return true
				}
				continue
			}
			for _, eb := range g.Out(e2) {
				if eb.Pred == pred && g.IsValue(eb.To) && m.Opts.valueEq(g.Label(ea.To), g.Label(eb.To)) {
					return true
				}
			}
		}
		return false
	default: // designated, entity variable, wildcard: typed existence
		has := func(e graph.NodeID) bool {
			for _, ed := range edges(e) {
				if ed.Pred == pred && g.IsEntity(ed.To) && g.TypeOf(ed.To) == n.typ {
					return true
				}
			}
			return false
		}
		return has(e1) && has(e2)
	}
}

// CanBePaired reports whether (e1, e2) can be paired by at least one key
// defined on its type (Proposition 9(a)): if not, (G,Σ) ⊭ (e1, e2) and
// the pair can be dropped from L. The quick x-local filter runs first;
// the full fixpoint only for keys that survive it.
func (m *Matcher) CanBePaired(e1, e2 graph.NodeID) bool {
	t := m.G.TypeOf(e1)
	if m.G.TypeOf(e2) != t {
		return false
	}
	g1d, g2d := m.Neighborhood(e1), m.Neighborhood(e2)
	for _, ck := range m.byType[t] {
		if !m.QuickPaired(ck, e1, e2) {
			continue
		}
		if m.ComputePairing(ck, e1, e2, g1d, g2d).Paired(e1, e2) {
			return true
		}
	}
	return false
}

// ReducedNeighborhoods returns the d-neighbors of (e1, e2) shrunk to the
// nodes participating in the maximum pairing relation of some key at the
// pair (§4.2 "Reducing (G1d, G2d)"). paired is false when no key pairs
// the pair at all, in which case the pair cannot be identified.
func (m *Matcher) ReducedNeighborhoods(e1, e2 graph.NodeID) (r1, r2 *graph.NodeSet, paired bool) {
	t := m.G.TypeOf(e1)
	if m.G.TypeOf(e2) != t {
		return nil, nil, false
	}
	g1d, g2d := m.Neighborhood(e1), m.Neighborhood(e2)
	r1, r2 = graph.NewNodeSet(), graph.NewNodeSet()
	for _, ck := range m.byType[t] {
		if !m.QuickPaired(ck, e1, e2) {
			continue
		}
		p := m.ComputePairing(ck, e1, e2, g1d, g2d)
		if p.Paired(e1, e2) {
			paired = true
			r1.Union(p.Nodes1())
			r2.Union(p.Nodes2())
		}
	}
	if !paired {
		return nil, nil, false
	}
	return r1, r2, true
}
