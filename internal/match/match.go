// Package match implements the matching machinery of "Keys for Graphs"
// (Fan et al., PVLDB 2015): deciding whether a pair of entities is
// identified by a key given the equivalence relation Eq computed so far.
//
// The central routine is the guided-search checker of §4.1 (procedure
// EvalMR): it combines the two subgraph-isomorphism searches (the match
// of Q(x) at e1 and at e2) into one backtracking search over a vector m
// that instantiates each pattern node with a pair (s1, s2), checking the
// feasibility conditions Injective, Equality and Guided expansion, and
// terminating early at the first full instantiation.
//
// The package also provides the VF2-flavored baseline used by EM^VF2_MR
// (enumerate all matches at e1 and at e2 separately, then test whether
// any two coincide), the pairing relation of §4.2 (Proposition 9) used
// to filter the candidate set L and shrink d-neighbors, candidate-set
// construction, and the entity-pair dependency index that powers the
// incremental-checking optimizations of §4.2 and the dep edges of §5.
package match

import (
	"fmt"
	"sort"
	"sync"

	"graphkeys/internal/engine"
	"graphkeys/internal/graph"
	"graphkeys/internal/keys"
	"graphkeys/internal/pattern"
)

// EqView is the read interface the matcher needs on the equivalence
// relation Eq. Both *eqrel.Eq and *eqrel.Safe implement it.
type EqView interface {
	Same(a, b int32) bool
}

// Options configures matching.
type Options struct {
	// ValueEq decides value equality. nil means exact string equality.
	// The paper's Remark (1) notes keys extend to similarity predicates;
	// plugging a similarity function here is that extension.
	ValueEq func(a, b string) bool
	// Workers parallelizes the d-neighbor precomputation in New across
	// this many goroutines (the paper's DriverMR constructs d-neighbors
	// as a MapReduce job, §4.1). Values below 2 mean sequential.
	Workers int
	// Lazy skips the up-front d-neighbor precomputation; Neighborhood
	// then computes and caches per entity on demand. The lazy caches are
	// mutex-guarded, so the read paths the incremental engine's parallel
	// repair fans out over (Neighborhood, ValuePartners, QuickPaired,
	// the witness checks) are safe for concurrent use; the candidate
	// builders and other whole-graph entry points remain single-caller.
	// The incremental engine uses lazy matchers because it only ever
	// inspects a small affected region of the graph per delta.
	Lazy bool
	// Obs receives the candidate pipeline's instruments (streamed /
	// pruned / postings-scanned counts); Eng receives the execution
	// substrate's (Parallel fan-out, pool worker activity). Both are
	// per-owner handles — coexisting matchers with separate registries
	// keep their counts apart. nil means uninstrumented.
	Obs *Obs
	Eng *engine.Obs
}

func (o Options) valueEq(a, b string) bool {
	if o.ValueEq == nil {
		return a == b
	}
	return o.ValueEq(a, b)
}

// compiledNode is a pattern node resolved against one graph.
type compiledNode struct {
	kind    keyNodeKind
	typ     graph.TypeID // entity-like nodes
	constID graph.NodeID // Const nodes: the value node in G, or NoNode
}

type keyNodeKind uint8

const (
	kDesignated keyNodeKind = iota
	kEntityVar
	kValueVar
	kWildcard
	kConst
)

// compiledTriple is a pattern triple with the predicate resolved.
type compiledTriple struct {
	subj, obj int
	pred      graph.PredID
}

// xAnchor is one value-anchor requirement incident to the designated
// variable: a pattern triple (x, pred, a) whose object a is a value
// variable (constID == graph.NoNode) or a constant (constID is the
// interned value node). Any witness of the key at (e1, e2) binds a to
// one value node v with (e1, pred, v) and (e2, pred, v) in G, so both
// sides lie in the posting list of (pred, v) — the join candidate
// generation intersects over.
type xAnchor struct {
	pred    graph.PredID
	constID graph.NodeID
}

// CompiledKey is a key compiled against a specific graph: predicate and
// type names resolved to IDs, plus a search order over pattern nodes.
// A key whose predicates, types or constants do not occur in the graph
// cannot match anything; such keys compile with matchable == false.
type CompiledKey struct {
	Key *keys.Key

	nodes   []compiledNode
	triples []compiledTriple
	x       int
	// incident[i] lists the triples touching pattern node i.
	incident [][]int
	// order is a node instantiation order: order[0] == x and every later
	// node is adjacent to an earlier one (patterns are connected).
	// anchor[i] picks, for order position i>0, a triple connecting
	// order[i] to an already-instantiated node.
	order  []int
	anchor []int

	matchable      bool
	hasValueAnchor bool
	// xAnchors lists the value anchors incident to x; nonXAnchor
	// records that some value anchor is not incident to x (possible
	// only for keys of radius >= 2, where the anchor hangs off another
	// pattern node).
	xAnchors   []xAnchor
	nonXAnchor bool
}

// Matchable reports whether the key can possibly match in the graph it
// was compiled against.
func (ck *CompiledKey) Matchable() bool { return ck.matchable }

// HasValueAnchor reports whether the key's pattern contains a value
// variable or constant node. Under exact value equality a witness must
// bind such an anchor to a single interned value node shared by both
// sides, which is what lets candidate generation join on the inverted
// value index instead of sweeping all same-type pairs.
func (ck *CompiledKey) HasValueAnchor() bool { return ck.hasValueAnchor }

// Compile resolves a key against g. The returned key is read-only and
// safe for concurrent use.
func Compile(g *graph.Graph, k *keys.Key) (*CompiledKey, error) {
	p := k.Pattern
	ck := &CompiledKey{
		Key:       k,
		x:         p.X,
		matchable: true,
	}
	ck.nodes = make([]compiledNode, len(p.Nodes))
	for i, n := range p.Nodes {
		cn := compiledNode{constID: graph.NoNode}
		switch n.Kind {
		case pattern.Designated:
			cn.kind = kDesignated
		case pattern.EntityVar:
			cn.kind = kEntityVar
		case pattern.ValueVar:
			cn.kind = kValueVar
		case pattern.Wildcard:
			cn.kind = kWildcard
		case pattern.Const:
			cn.kind = kConst
		default:
			return nil, fmt.Errorf("match: %s: unknown node kind %d", k.Name, n.Kind)
		}
		if cn.kind == kDesignated || cn.kind == kEntityVar || cn.kind == kWildcard {
			t, ok := g.TypeByName(n.Type)
			if !ok {
				ck.matchable = false
			}
			cn.typ = t
		}
		if cn.kind == kConst {
			if v, ok := g.Value(n.Value); ok {
				cn.constID = v
			} else {
				ck.matchable = false
			}
		}
		if cn.kind == kValueVar || cn.kind == kConst {
			ck.hasValueAnchor = true
		}
		ck.nodes[i] = cn
	}
	ck.triples = make([]compiledTriple, len(p.Triples))
	ck.incident = make([][]int, len(p.Nodes))
	for ti, t := range p.Triples {
		pid, ok := g.PredByName(t.Pred)
		if !ok {
			ck.matchable = false
		}
		ck.triples[ti] = compiledTriple{subj: t.Subj, obj: t.Obj, pred: pid}
		ck.incident[t.Subj] = append(ck.incident[t.Subj], ti)
		if t.Obj != t.Subj {
			ck.incident[t.Obj] = append(ck.incident[t.Obj], ti)
		}
		if okind := ck.nodes[t.Obj].kind; okind == kValueVar || okind == kConst {
			if t.Subj == ck.x {
				ck.xAnchors = append(ck.xAnchors, xAnchor{pred: pid, constID: ck.nodes[t.Obj].constID})
			} else {
				ck.nonXAnchor = true
			}
		}
	}
	ck.buildOrder()
	return ck, nil
}

// buildOrder computes a connected instantiation order starting at x,
// preferring nodes with more already-satisfiable constraints first
// (constants and value variables early: they prune hardest).
func (ck *CompiledKey) buildOrder() {
	n := len(ck.nodes)
	placed := make([]bool, n)
	ck.order = make([]int, 0, n)
	ck.anchor = make([]int, 0, n)
	ck.order = append(ck.order, ck.x)
	ck.anchor = append(ck.anchor, -1)
	placed[ck.x] = true
	for len(ck.order) < n {
		best, bestAnchor, bestScore := -1, -1, -1
		for cand := 0; cand < n; cand++ {
			if placed[cand] {
				continue
			}
			// Find a triple connecting cand to a placed node.
			anchor := -1
			links := 0
			for _, ti := range ck.incident[cand] {
				t := ck.triples[ti]
				other := t.subj
				if other == cand {
					other = t.obj
				}
				if placed[other] {
					links++
					if anchor == -1 {
						anchor = ti
					}
				}
			}
			if anchor == -1 {
				continue
			}
			score := links * 10
			switch ck.nodes[cand].kind {
			case kConst:
				score += 5
			case kValueVar:
				score += 4
			case kEntityVar:
				score += 2
			}
			if score > bestScore {
				best, bestAnchor, bestScore = cand, anchor, score
			}
		}
		if best == -1 {
			// Disconnected pattern; Validate prevents this, but guard to
			// keep the matcher total.
			for cand := 0; cand < n; cand++ {
				if !placed[cand] {
					best, bestAnchor = cand, -1
					break
				}
			}
		}
		placed[best] = true
		ck.order = append(ck.order, best)
		ck.anchor = append(ck.anchor, bestAnchor)
	}
}

// Matcher holds a key set compiled against one graph plus the cached
// per-entity d-neighbors the drivers of §4/§5 construct up front. It is
// read-only after New and safe for concurrent use.
type Matcher struct {
	G    *graph.Graph
	Set  *keys.Set
	Opts Options

	// compiled keys per entity type, in the set's per-type order
	// (value-based first).
	byType map[graph.TypeID][]*CompiledKey
	// dByType is the per-type neighborhood bound d.
	dByType map[graph.TypeID]int
	// lazyMu guards the two lazy memo maps below on lazy matchers, so
	// concurrent checkers (the parallel repair pass) can share one
	// matcher. Non-lazy matchers never take it: their neighborhoods map
	// is read-only after New and valueNbhd is unused.
	lazyMu sync.Mutex
	// neighborhoods caches Gd for every entity of a keyed type.
	neighborhoods map[graph.NodeID]*graph.NodeSet
	// valueNbhd caches d-hop neighborhoods of value nodes for
	// ValuePartners, on lazy matchers only (the incremental engine
	// recreates its matcher per delta, so no stale entry survives a
	// mutation; non-lazy matchers stay read-only after New).
	valueNbhd map[valueReachKey]*graph.NodeSet
}

type valueReachKey struct {
	v graph.NodeID
	d int
}

// New compiles the key set against g and precomputes the d-neighbor of
// every entity a key is defined on (the paper's DriverMR line 1).
func New(g *graph.Graph, set *keys.Set, opts Options) (*Matcher, error) {
	m := &Matcher{
		G:             g,
		Set:           set,
		Opts:          opts,
		byType:        make(map[graph.TypeID][]*CompiledKey),
		dByType:       make(map[graph.TypeID]int),
		neighborhoods: make(map[graph.NodeID]*graph.NodeSet),
		valueNbhd:     make(map[valueReachKey]*graph.NodeSet),
	}
	for _, typeName := range set.Types() {
		tid, ok := g.TypeByName(typeName)
		if !ok {
			continue // no entities of this type in G
		}
		for _, k := range set.ForType(typeName) {
			ck, err := Compile(g, k)
			if err != nil {
				return nil, err
			}
			m.byType[tid] = append(m.byType[tid], ck)
		}
		m.dByType[tid] = set.MaxRadiusForType(typeName)
	}
	if opts.Lazy {
		return m, nil
	}
	// Precompute d-neighbors for every keyed entity, in parallel when
	// asked: the neighborhoods are read-only afterwards.
	type job struct {
		e graph.NodeID
		d int
	}
	// Iterate types in sorted order so the job list — and with it the
	// parallel work split — is identical run to run.
	tids := make([]graph.TypeID, 0, len(m.dByType))
	for tid := range m.dByType {
		tids = append(tids, tid)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	var jobs []job
	for _, tid := range tids {
		d := m.dByType[tid]
		for _, e := range g.EntitiesOfType(tid) {
			jobs = append(jobs, job{e, d})
		}
	}
	results := make([]*graph.NodeSet, len(jobs))
	p := opts.Workers
	if len(jobs) < 2*p {
		p = 1
	}
	engine.Parallel(opts.Eng, p, len(jobs), func(i int) {
		results[i] = g.Neighborhood(jobs[i].e, jobs[i].d)
	})
	for i, j := range jobs {
		m.neighborhoods[j.e] = results[i]
	}
	return m, nil
}

// KeysFor returns the compiled keys defined on entities of type t.
func (m *Matcher) KeysFor(t graph.TypeID) []*CompiledKey { return m.byType[t] }

// KeyedTypes returns the graph type IDs that have keys, sorted.
func (m *Matcher) KeyedTypes() []graph.TypeID {
	out := make([]graph.TypeID, 0, len(m.byType))
	for t := range m.byType {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Neighborhood returns the cached d-neighbor of e, where d is the
// maximum radius of the keys on e's type. It returns nil (= the whole
// graph) if e's type has no keys; callers only ask for keyed entities.
// On a lazy matcher the neighborhood is computed and cached on first
// request.
func (m *Matcher) Neighborhood(e graph.NodeID) *graph.NodeSet {
	if !m.Opts.Lazy {
		return m.neighborhoods[e]
	}
	m.lazyMu.Lock()
	ns, ok := m.neighborhoods[e]
	m.lazyMu.Unlock()
	if ok {
		return ns
	}
	if !m.G.IsEntity(e) {
		return nil
	}
	d, ok := m.dByType[m.G.TypeOf(e)]
	if !ok {
		return nil
	}
	// The BFS runs outside the lock: two goroutines racing on the same
	// entity compute identical sets and whichever caches last wins.
	ns = m.G.Neighborhood(e, d)
	m.lazyMu.Lock()
	m.neighborhoods[e] = ns
	m.lazyMu.Unlock()
	return ns
}

// RadiusFor returns the d-neighbor bound for type t.
func (m *Matcher) RadiusFor(t graph.TypeID) int { return m.dByType[t] }

// KeyedEntities lists the entities whose types have keys — the
// universe over which chase(G, Σ) pairs are reported.
func (m *Matcher) KeyedEntities() []int32 {
	var out []int32
	for _, t := range m.KeyedTypes() {
		for _, e := range m.G.EntitiesOfType(t) {
			out = append(out, int32(e))
		}
	}
	return out
}

// The accessors below expose the compiled pattern structure to the
// vertex-centric engine (package emvc), which drives its own message
// propagation over the product graph but reuses this compilation.

// PatternNodeCount returns the number of pattern nodes.
func (ck *CompiledKey) PatternNodeCount() int { return len(ck.nodes) }

// XIndex returns the index of the designated variable x.
func (ck *CompiledKey) XIndex() int { return ck.x }

// NodeInfo describes pattern node i: its kind (as the pattern package
// kind), resolved entity type (entity-like nodes) and the graph value
// node of a constant (or graph.NoNode).
func (ck *CompiledKey) NodeInfo(i int) (kind pattern.NodeKind, typ graph.TypeID, constID graph.NodeID) {
	n := ck.nodes[i]
	switch n.kind {
	case kDesignated:
		kind = pattern.Designated
	case kEntityVar:
		kind = pattern.EntityVar
	case kValueVar:
		kind = pattern.ValueVar
	case kWildcard:
		kind = pattern.Wildcard
	case kConst:
		kind = pattern.Const
	}
	return kind, n.typ, n.constID
}

// TripleCount returns |Q|.
func (ck *CompiledKey) TripleCount() int { return len(ck.triples) }

// TripleAt returns pattern triple i with its resolved predicate.
func (ck *CompiledKey) TripleAt(i int) (subj int, pred graph.PredID, obj int) {
	t := ck.triples[i]
	return t.subj, t.pred, t.obj
}

// IncidentTriples returns the indices of triples touching pattern node
// i. The slice is owned by the key.
func (ck *CompiledKey) IncidentTriples(i int) []int { return ck.incident[i] }

// identityEq is the Eq0 view: only (e, e) pairs.
type identityEq struct{}

func (identityEq) Same(a, b int32) bool { return a == b }

// Identity returns the node-identity relation view Eq0.
func Identity() EqView { return identityEq{} }
