package match

import "graphkeys/internal/graph"

// This file implements procedure EvalMR of §4.1: the guided backtracking
// search that decides (G1^d ∪ G2^d, Eq, {Q(x)}) ⊨ (e1, e2) without
// enumerating all isomorphic mappings, with early termination at the
// first full instantiation (Lemma 8).

// pairSlot is one entry of the instantiation vector m: the pair of graph
// nodes a pattern node is bound to, or unset.
type pairSlot struct {
	a, b graph.NodeID
	set  bool
}

// evalState carries one in-progress guided search. The Injective
// feasibility condition is enforced by scanning the slot vector, which
// beats per-side hash sets for the small patterns keys are in practice
// (the paper observes real keys have radius 1–2 and a handful of
// triples) and keeps a check allocation-light — the engines run tens of
// thousands of checks per round.
type evalState struct {
	m     *Matcher
	ck    *CompiledKey
	g1d   *graph.NodeSet
	g2d   *graph.NodeSet
	eq    EqView
	slots []pairSlot
	// steps counts search-tree nodes visited, for the experiment
	// reports on redundant isomorphism checking.
	steps int
}

// IdentifiedByKey checks whether key ck identifies (e1, e2) given Eq,
// restricting the search for the match at e1 to g1d and at e2 to g2d
// (pass nil sets to search the whole graph). It reports the number of
// search steps taken.
func (m *Matcher) IdentifiedByKey(ck *CompiledKey, e1, e2 graph.NodeID, g1d, g2d *graph.NodeSet, eq EqView) (ok bool, steps int) {
	if !ck.matchable {
		return false, 0
	}
	if m.G.TypeOf(e1) != m.G.TypeOf(e2) {
		return false, 0
	}
	xn := ck.nodes[ck.x]
	if m.G.TypeOf(e1) != xn.typ {
		return false, 0
	}
	if !g1d.Contains(e1) || !g2d.Contains(e2) {
		return false, 0
	}
	st := &evalState{
		m:     m,
		ck:    ck,
		g1d:   g1d,
		g2d:   g2d,
		eq:    eq,
		slots: make([]pairSlot, len(ck.nodes)),
	}
	st.bind(ck.x, e1, e2)
	// Self-loop triples on x have no later endpoint to trigger their
	// guided-expansion check, so verify them here.
	for _, ti := range ck.incident[ck.x] {
		t := ck.triples[ti]
		if t.subj == ck.x && t.obj == ck.x {
			if !m.G.HasTriple(e1, t.pred, e1) || !m.G.HasTriple(e2, t.pred, e2) {
				return false, 0
			}
		}
	}
	ok = st.search(1)
	return ok, st.steps
}

// witnessSearch runs the guided search for ck on (e1, e2) and returns
// the search state with slots still bound on success. It is the shared
// core of the witness- and provenance-harvesting checkers.
func (m *Matcher) witnessSearch(ck *CompiledKey, e1, e2 graph.NodeID, g1d, g2d *graph.NodeSet, eq EqView) (st *evalState, ok bool) {
	if !ck.matchable || m.G.TypeOf(e1) != m.G.TypeOf(e2) || m.G.TypeOf(e1) != ck.nodes[ck.x].typ {
		return nil, false
	}
	if !g1d.Contains(e1) || !g2d.Contains(e2) {
		return nil, false
	}
	st = &evalState{
		m: m, ck: ck, g1d: g1d, g2d: g2d, eq: eq,
		slots: make([]pairSlot, len(ck.nodes)),
	}
	st.bind(ck.x, e1, e2)
	for _, ti := range ck.incident[ck.x] {
		t := ck.triples[ti]
		if t.subj == ck.x && t.obj == ck.x {
			if !m.G.HasTriple(e1, t.pred, e1) || !m.G.HasTriple(e2, t.pred, e2) {
				return st, false
			}
		}
	}
	return st, st.search(1)
}

// harvestRequires reads the pairs bound to the recursive entity
// variables off a successful search — the prerequisites that had to be
// in Eq for this identification. Reflexive pairs (same entity on both
// sides) are omitted.
func (st *evalState) harvestRequires() (requires [][2]graph.NodeID) {
	for q, n := range st.ck.nodes {
		if q == st.ck.x || n.kind != kEntityVar {
			continue
		}
		s := st.slots[q]
		if s.a != s.b {
			requires = append(requires, [2]graph.NodeID{s.a, s.b})
		}
	}
	return requires
}

// harvestUses reads the graph triples the witness match used, on both
// sides, off a successful search: for every pattern triple (u, p, v)
// the instantiated triples (m(u).a, p, m(v).a) and (m(u).b, p, m(v).b).
// Duplicates (the two sides may share triples) are removed.
func (st *evalState) harvestUses() []graph.Triple {
	seen := make(map[graph.Triple]bool, 2*len(st.ck.triples))
	uses := make([]graph.Triple, 0, 2*len(st.ck.triples))
	for _, t := range st.ck.triples {
		s, o := st.slots[t.subj], st.slots[t.obj]
		for _, tr := range [2]graph.Triple{
			{S: s.a, P: t.pred, O: o.a},
			{S: s.b, P: t.pred, O: o.b},
		} {
			if !seen[tr] {
				seen[tr] = true
				uses = append(uses, tr)
			}
		}
	}
	return uses
}

// IdentifiedByKeyWitness is IdentifiedByKey but also returns, on
// success, the pairs bound to the recursive entity variables of the key
// — the prerequisites that had to be in Eq for this identification.
// Pairs that are reflexive (same entity on both sides) are omitted.
func (m *Matcher) IdentifiedByKeyWitness(ck *CompiledKey, e1, e2 graph.NodeID, g1d, g2d *graph.NodeSet, eq EqView) (ok bool, requires [][2]graph.NodeID, steps int) {
	st, ok := m.witnessSearch(ck, e1, e2, g1d, g2d, eq)
	if st == nil {
		return false, nil, 0
	}
	if !ok {
		return false, nil, st.steps
	}
	return true, st.harvestRequires(), st.steps
}

// IdentifiedByKeyProvenance is IdentifiedByKeyWitness extended with
// triple provenance: on success it additionally returns the graph
// triples the witness match used on either side. The incremental
// engine indexes chase steps by these triples so that removing a
// triple invalidates exactly the identifications whose proofs depend
// on it.
func (m *Matcher) IdentifiedByKeyProvenance(ck *CompiledKey, e1, e2 graph.NodeID, g1d, g2d *graph.NodeSet, eq EqView) (ok bool, requires [][2]graph.NodeID, uses []graph.Triple, steps int) {
	st, ok := m.witnessSearch(ck, e1, e2, g1d, g2d, eq)
	if st == nil {
		return false, nil, nil, 0
	}
	if !ok {
		return false, nil, nil, st.steps
	}
	return true, st.harvestRequires(), st.harvestUses(), st.steps
}

// Identified checks whether any key defined on the type of (e1, e2)
// identifies the pair given Eq, using the cached d-neighbors. It stops
// at the first identifying key (the keys for a type are ordered cheap
// first). It returns the identifying key, if any, and total steps.
func (m *Matcher) Identified(e1, e2 graph.NodeID, eq EqView) (ok bool, by *CompiledKey, steps int) {
	t := m.G.TypeOf(e1)
	if m.G.TypeOf(e2) != t {
		return false, nil, 0
	}
	g1d := m.Neighborhood(e1)
	g2d := m.Neighborhood(e2)
	for _, ck := range m.byType[t] {
		got, s := m.IdentifiedByKey(ck, e1, e2, g1d, g2d, eq)
		steps += s
		if got {
			return true, ck, steps
		}
	}
	return false, nil, steps
}

func (st *evalState) bind(q int, a, b graph.NodeID) {
	st.slots[q] = pairSlot{a: a, b: b, set: true}
}

func (st *evalState) unbind(q int) {
	st.slots[q] = pairSlot{}
}

// search instantiates the pattern node at order position pos and
// recurses; it returns true as soon as m is fully instantiated
// (early termination).
func (st *evalState) search(pos int) bool {
	if pos == len(st.ck.order) {
		return true
	}
	st.steps++
	q := st.ck.order[pos]
	ti := st.ck.anchor[pos]
	t := st.ck.triples[ti]

	// The anchor triple connects q to an instantiated node; enumerate
	// candidate pairs along it in both graphs.
	if t.subj == q {
		// (q, pred, other): candidates are in-neighbors of the other
		// endpoint's bindings.
		other := st.slots[t.obj]
		for _, ea := range st.m.G.In(other.a) {
			if ea.Pred != t.pred {
				continue
			}
			for _, eb := range st.m.G.In(other.b) {
				if eb.Pred != t.pred {
					continue
				}
				if st.feasible(q, ea.To, eb.To) {
					st.bind(q, ea.To, eb.To)
					if st.search(pos + 1) {
						return true
					}
					st.unbind(q)
				}
			}
		}
		return false
	}
	// (other, pred, q): candidates are out-neighbors.
	other := st.slots[t.subj]
	for _, ea := range st.m.G.Out(other.a) {
		if ea.Pred != t.pred {
			continue
		}
		for _, eb := range st.m.G.Out(other.b) {
			if eb.Pred != t.pred {
				continue
			}
			if st.feasible(q, ea.To, eb.To) {
				st.bind(q, ea.To, eb.To)
				if st.search(pos + 1) {
					return true
				}
				st.unbind(q)
			}
		}
	}
	return false
}

// feasible checks the three feasibility conditions of EvalMR for
// extending m with m[q] = (a, b).
func (st *evalState) feasible(q int, a, b graph.NodeID) bool {
	g := st.m.G
	// Containment in the d-neighbors (the search space is G1d ∪ G2d).
	if !st.g1d.Contains(a) || !st.g2d.Contains(b) {
		return false
	}
	// (1) Injective: a and b do not appear in m already, per side.
	for _, s := range st.slots {
		if s.set && (s.a == a || s.b == b) {
			return false
		}
	}
	// (2) Equality, by node kind.
	n := st.ck.nodes[q]
	switch n.kind {
	case kDesignated:
		return false // x is bound at initialization and never re-bound
	case kEntityVar:
		if !g.IsEntity(a) || !g.IsEntity(b) ||
			g.TypeOf(a) != n.typ || g.TypeOf(b) != n.typ {
			return false
		}
		if !st.eq.Same(int32(a), int32(b)) {
			return false
		}
	case kValueVar:
		if !g.IsValue(a) || !g.IsValue(b) {
			return false
		}
		if !st.m.Opts.valueEq(g.Label(a), g.Label(b)) {
			return false
		}
	case kWildcard:
		if !g.IsEntity(a) || !g.IsEntity(b) ||
			g.TypeOf(a) != n.typ || g.TypeOf(b) != n.typ {
			return false
		}
		// No identity requirement: that is the point of wildcards.
	case kConst:
		if !g.IsValue(a) || !g.IsValue(b) {
			return false
		}
		cv := g.Label(st.ck.nodes[q].constID)
		if !st.m.Opts.valueEq(g.Label(a), cv) || !st.m.Opts.valueEq(g.Label(b), cv) {
			return false
		}
	}
	// (3) Guided expansion: every pattern triple between q and an
	// already-instantiated node must exist in both graphs, within the
	// d-neighbors.
	for _, ti := range st.ck.incident[q] {
		t := st.ck.triples[ti]
		if t.subj == q && t.obj == q {
			// Self-loop pattern triple: verify immediately on binding.
			if !g.HasTriple(a, t.pred, a) || !g.HasTriple(b, t.pred, b) {
				return false
			}
			continue
		}
		if t.subj == q {
			if o := st.slots[t.obj]; o.set {
				if !g.HasTriple(a, t.pred, o.a) || !g.HasTriple(b, t.pred, o.b) {
					return false
				}
			}
		}
		if t.obj == q {
			if s := st.slots[t.subj]; s.set {
				if !g.HasTriple(s.a, t.pred, a) || !g.HasTriple(s.b, t.pred, b) {
					return false
				}
			}
		}
	}
	return true
}
