package match

import (
	"cmp"
	"iter"
	"slices"
	"sort"

	"graphkeys/internal/eqrel"
	"graphkeys/internal/graph"
)

// This file is the streaming candidate pipeline: the lazy counterpart
// of candidates.go ("From Volcano to Lazy Sequences", PAPERS.md).
// CandidatesIndexed builds, dedups and sorts the entire candidate
// list L before a single key check runs; CandidateStream yields the
// exact same pairs in the exact same order, but one at a time,
// straight out of the posting-list and value-bucket merge-joins — the
// consumer's key checks run while generation is still cold, nothing
// is materialized, and an early-terminating consumer (a violation
// probe, a capped scan) stops the joins mid-flight.
//
// Laziness also changes what planning can do. The materialized path
// must build every per-entity join before sorting; the stream visits
// entities in sorted order to begin with, so per-type key evaluation
// can reorder greedily by the partner cardinality each key has
// produced so far (statistics-free, "When Greedy Beats Optimal"), and
// each key's anchor intersection runs cheapest-first inside
// radius1KeyPartners. Every reordered operator commutes (unions and
// intersections of partner sets), so the emitted sequence is provably
// the materialized one.
//
// Ordering invariant, relied on by the chase: each per-type stream
// emits pairs sorted by (A, B), types are visited in KeyedTypes order,
// and distinct types yield disjoint pair populations (an entity has
// one type), so a k-way merge over the per-type streams emits the
// global sortPairs order — elementwise equal to CandidatesIndexed().

// CandidateStream returns the candidate set L of §4.1 as a lazy
// iterator: the same pairs as CandidatesIndexed, in the same sorted
// order, generated incrementally from the inverted value index (with
// the same per-type full-sweep fallback). Breaking out of the loop
// stops generation; no candidate list is ever materialized.
func (m *Matcher) CandidateStream() iter.Seq[eqrel.Pair] {
	return func(yield func(eqrel.Pair) bool) {
		ob := m.Opts.Obs
		emit := func(pr eqrel.Pair) bool {
			if ob != nil {
				ob.CandidatesStreamed.Inc()
			}
			return yield(pr)
		}
		var types []graph.TypeID
		for _, t := range m.KeyedTypes() {
			if m.hasMatchableKey(t) {
				types = append(types, t)
			}
		}
		switch len(types) {
		case 0:
			return
		case 1:
			// Single-type fast path: no merge machinery, no Pull
			// goroutines.
			for pr := range m.typeStream(types[0]) {
				if !emit(pr) {
					return
				}
			}
			return
		}
		// K-way merge over the per-type streams. Pair populations are
		// disjoint across types (one type per entity) and each stream
		// is sorted, so picking the smallest head reproduces the
		// global sortPairs order exactly.
		nexts := make([]func() (eqrel.Pair, bool), len(types))
		heads := make([]eqrel.Pair, len(types))
		alive := make([]bool, len(types))
		for i, t := range types {
			next, stop := iter.Pull(m.typeStream(t))
			defer stop()
			nexts[i] = next
			heads[i], alive[i] = next()
		}
		for {
			best := -1
			for i := range heads {
				if alive[i] && (best < 0 || comparePairs(heads[i], heads[best]) < 0) {
					best = i
				}
			}
			if best < 0 {
				return
			}
			if !emit(heads[best]) {
				return
			}
			heads[best], alive[best] = nexts[best]()
		}
	}
}

// FilterStream lazily applies the pairing necessary condition (§4.2
// "Reducing L") to a candidate stream — the streamed analogue of
// FilterPaired — counting what it prunes before any key check runs.
func (m *Matcher) FilterStream(s iter.Seq[eqrel.Pair]) iter.Seq[eqrel.Pair] {
	return func(yield func(eqrel.Pair) bool) {
		ob := m.Opts.Obs
		for pr := range s {
			if !m.CanBePaired(graph.NodeID(pr.A), graph.NodeID(pr.B)) {
				if ob != nil {
					ob.CandidatesPruned.Inc()
				}
				continue
			}
			if !yield(pr) {
				return
			}
		}
	}
}

// typeStream streams the sorted candidate pairs of one keyed type,
// choosing the same construction CandidatesIndexed would: full
// C(n, 2) sweep for non-indexable types, posting-list joins at radius
// 1, value-bucket joins beyond.
func (m *Matcher) typeStream(t graph.TypeID) iter.Seq[eqrel.Pair] {
	if !m.IndexableType(t) {
		return m.sweepStream(t)
	}
	if m.dByType[t] <= 1 {
		return m.radius1Stream(t)
	}
	return m.radiusDStream(t)
}

// sortedEntitiesOfType clones and sorts the live type-t population:
// EntitiesOfType maintains append order, and the streams need
// ascending IDs so that emitting each pair from its smaller side
// yields (A, B)-sorted output without a sort at the end.
func (m *Matcher) sortedEntitiesOfType(t graph.TypeID) []graph.NodeID {
	ents := slices.Clone(m.G.EntitiesOfType(t))
	slices.Sort(ents)
	return ents
}

// sweepStream yields every unordered pair of distinct type-t entities
// in sorted order — the lazy full sweep.
func (m *Matcher) sweepStream(t graph.TypeID) iter.Seq[eqrel.Pair] {
	return func(yield func(eqrel.Pair) bool) {
		ents := m.sortedEntitiesOfType(t)
		for i := 0; i < len(ents); i++ {
			for j := i + 1; j < len(ents); j++ {
				if !yield(eqrel.MakePair(int32(ents[i]), int32(ents[j]))) {
					return
				}
			}
		}
	}
}

// radius1Stream streams a radius-1 type's candidates from per-entity
// posting-list joins (the lazy appendIndexedRadius1). Keys are
// re-planned as the stream runs: before each entity they reorder
// ascending by the mean partner cardinality observed so far, so the
// keys that have been producing small partner sets — the ones most
// likely to keep the union small — evaluate first. The union across
// keys commutes, so the ordering changes cost, never output.
func (m *Matcher) radius1Stream(t graph.TypeID) iter.Seq[eqrel.Pair] {
	return func(yield func(eqrel.Pair) bool) {
		type keyStat struct {
			ck       *CompiledKey
			total, n int64
		}
		var ks []*keyStat
		for _, ck := range m.byType[t] {
			if ck.Matchable() {
				ks = append(ks, &keyStat{ck: ck})
			}
		}
		mean := func(s *keyStat) int64 {
			if s.n == 0 {
				return 0 // unobserved keys try early, cheaply probing themselves
			}
			return s.total / s.n
		}
		var lists [][]graph.NodeID
		for _, e := range m.sortedEntitiesOfType(t) {
			slices.SortStableFunc(ks, func(a, b *keyStat) int {
				return cmp.Compare(mean(a), mean(b))
			})
			lists = lists[:0]
			for _, s := range ks {
				lst := m.radius1KeyPartners(s.ck, e)
				s.total += int64(len(lst))
				s.n++
				if len(lst) > 0 {
					lists = append(lists, lst)
				}
			}
			partners := foldUnion(lists)
			// partners is sorted: skip ahead to the first q > e.
			i := sort.Search(len(partners), func(i int) bool { return partners[i] > e })
			for _, q := range partners[i:] {
				// Posting subjects are live entities by construction;
				// only the type needs checking.
				if m.G.TypeOf(q) == t {
					if !yield(eqrel.MakePair(int32(e), int32(q))) {
						return
					}
				}
			}
		}
	}
}

// radiusDStream streams candidates for a type with radius d > 1. The
// materialized path buckets every entity by the value nodes of its
// d-neighborhood up front; the stream inverts that: per entity it
// pulls the member list of each value node it can see (memoized for
// the stream's lifetime — each bucket is computed once, as in the
// eager build) and emits the union's tail past e. Symmetry of the
// undirected d-neighborhood (q ∈ valueReach(v, d) ⟺ v ∈ N_d(q))
// makes the per-entity view equal to the bucket join: e and q share
// bucket v exactly when v is a value node in both d-neighborhoods.
func (m *Matcher) radiusDStream(t graph.TypeID) iter.Seq[eqrel.Pair] {
	return func(yield func(eqrel.Pair) bool) {
		d := m.dByType[t]
		members := make(map[graph.NodeID][]graph.NodeID)
		var lists [][]graph.NodeID
		for _, e := range m.sortedEntitiesOfType(t) {
			lists = lists[:0]
			m.Neighborhood(e).Each(func(n graph.NodeID) {
				if !m.G.IsValue(n) {
					return
				}
				lst, ok := members[n]
				if !ok {
					lst = m.bucketMembers(n, t, d)
					members[n] = lst
				}
				if len(lst) > 0 {
					lists = append(lists, lst)
				}
			})
			partners := foldUnion(lists)
			i := sort.Search(len(partners), func(i int) bool { return partners[i] > e })
			for _, q := range partners[i:] {
				if !yield(eqrel.MakePair(int32(e), int32(q))) {
					return
				}
			}
		}
	}
}

// bucketMembers returns the sorted type-t entities whose (cached)
// d-neighborhood contains value node v — bucket v of the eager
// radius-d build, computed from v's side via neighborhood symmetry.
func (m *Matcher) bucketMembers(v graph.NodeID, t graph.TypeID, d int) []graph.NodeID {
	if ob := m.Opts.Obs; ob != nil {
		ob.PostingsScanned.Inc()
	}
	var out []graph.NodeID
	m.valueReach(v, d).Each(func(q graph.NodeID) {
		if m.G.IsEntity(q) && m.G.TypeOf(q) == t {
			out = append(out, q)
		}
	})
	return out
}

// PartnerStream returns the candidate partners of entity e — the
// other same-type entities a key on e's type could possibly identify
// e with, ascending — as a lazy iterator: the streamed ValuePartners.
// On an indexable type partners come from the inverted value index;
// otherwise the whole same-type population streams.
func (m *Matcher) PartnerStream(e graph.NodeID) iter.Seq[graph.NodeID] {
	return func(yield func(graph.NodeID) bool) {
		t := m.G.TypeOf(e)
		if !m.hasMatchableKey(t) {
			return
		}
		if !m.IndexableType(t) {
			for _, q := range m.sortedEntitiesOfType(t) {
				if q != e && !yield(q) {
					return
				}
			}
			return
		}
		d := m.dByType[t]
		if d <= 1 {
			var lists [][]graph.NodeID
			for _, ck := range m.byType[t] {
				if !ck.Matchable() {
					continue
				}
				if lst := m.radius1KeyPartners(ck, e); len(lst) > 0 {
					lists = append(lists, lst)
				}
			}
			for _, q := range foldUnion(lists) {
				if q == e || m.G.TypeOf(q) != t {
					continue
				}
				if !yield(q) {
					return
				}
			}
			return
		}
		var lists [][]graph.NodeID
		m.Neighborhood(e).Each(func(n graph.NodeID) {
			if !m.G.IsValue(n) {
				return
			}
			if lst := m.bucketMembers(n, t, d); len(lst) > 0 {
				lists = append(lists, lst)
			}
		})
		for _, q := range foldUnion(lists) {
			if q != e && !yield(q) {
				return
			}
		}
	}
}
