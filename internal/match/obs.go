package match

import (
	"graphkeys/internal/obs"
)

// Obs is the candidate pipeline's instrument bundle, carried on
// Options (Options.Obs) by the Matcher that owns the registry. It used
// to be a package-global atomic pointer, which cross-wired stream
// metrics whenever two Matchers coexisted in one process; per-options
// handles keep each owner's counts in its own registry. A nil *Obs is
// valid and means "uninstrumented".
type Obs struct {
	// CandidatesStreamed counts candidate pairs yielded by the
	// streaming pipeline (CandidateStream), before the pairing filter.
	CandidatesStreamed *obs.Counter
	// CandidatesPruned counts candidates the pairing necessary
	// condition (§4.2) dropped before any key check ran (FilterStream).
	CandidatesPruned *obs.Counter
	// PostingsScanned counts posting lists and value buckets pulled
	// into candidate joins. Early termination shows up here: a
	// rejected constant-anchor probe stops the join before the
	// remaining anchors' postings are pulled.
	PostingsScanned *obs.Counter
}

// NewObs builds an Obs wired to conventionally named instruments of
// the registry. Instruments are get-or-create by name, so several
// NewObs calls against the same registry share the underlying
// counters. A nil registry yields nil (uninstrumented).
func NewObs(r *obs.Registry) *Obs {
	if r == nil {
		return nil
	}
	return &Obs{
		CandidatesStreamed: r.Counter("match.candidates_streamed", "candidate pairs yielded by the streaming pipeline"),
		CandidatesPruned:   r.Counter("match.candidates_pruned", "candidates pruned by the pairing filter before any key check"),
		PostingsScanned:    r.Counter("match.postings_scanned", "posting lists and value buckets pulled into candidate joins"),
	}
}
