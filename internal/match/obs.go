package match

import (
	"sync/atomic"

	"graphkeys/internal/obs"
)

// Obs is the candidate pipeline's instrument bundle. Candidate
// generation runs on hot inner loops shared by every engine, so —
// like internal/engine — the hook is a package-global atomic pointer
// rather than a Matcher field: uninstrumented processes pay one
// atomic load per stream construction or join.
type Obs struct {
	// CandidatesStreamed counts candidate pairs yielded by the
	// streaming pipeline (CandidateStream), before the pairing filter.
	CandidatesStreamed *obs.Counter
	// CandidatesPruned counts candidates the pairing necessary
	// condition (§4.2) dropped before any key check ran (FilterStream).
	CandidatesPruned *obs.Counter
	// PostingsScanned counts posting lists and value buckets pulled
	// into candidate joins. Early termination shows up here: a
	// rejected constant-anchor probe stops the join before the
	// remaining anchors' postings are pulled.
	PostingsScanned *obs.Counter
}

var globalObs atomic.Pointer[Obs]

// SetObs installs (or, with nil, removes) the process-wide candidate
// pipeline instruments.
func SetObs(o *Obs) {
	globalObs.Store(o)
}

// RegisterObs builds an Obs wired to conventionally named instruments
// of the registry and installs it. A nil registry installs nothing.
func RegisterObs(r *obs.Registry) {
	if r == nil {
		return
	}
	SetObs(&Obs{
		CandidatesStreamed: r.Counter("match.candidates_streamed", "candidate pairs yielded by the streaming pipeline"),
		CandidatesPruned:   r.Counter("match.candidates_pruned", "candidates pruned by the pairing filter before any key check"),
		PostingsScanned:    r.Counter("match.postings_scanned", "posting lists and value buckets pulled into candidate joins"),
	})
}
