package mapreduce

import (
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestWordCount runs the canonical job: the runtime must produce the
// same counts regardless of p.
func TestWordCount(t *testing.T) {
	docs := []string{
		"a b c a",
		"b b c",
		"c c c",
		"",
	}
	want := map[string]int{"a": 2, "b": 3, "c": 5}
	for _, p := range []int{1, 2, 4, 8} {
		rt := New(p)
		type count struct {
			word string
			n    int
		}
		out := Round(rt, docs,
			func(doc string, emit func(string, int)) {
				for _, w := range strings.Fields(doc) {
					emit(w, 1)
				}
			},
			func(word string, ones []int, emit func(count)) {
				emit(count{word, len(ones)})
			})
		got := make(map[string]int)
		for _, c := range out {
			got[c.word] = c.n
		}
		if len(got) != len(want) {
			t.Fatalf("p=%d: got %v, want %v", p, got, want)
		}
		for w, n := range want {
			if got[w] != n {
				t.Fatalf("p=%d: count[%s]=%d, want %d", p, w, got[w], n)
			}
		}
		st := rt.Stats()
		if len(st) != 1 {
			t.Fatalf("p=%d: rounds = %d", p, len(st))
		}
		if st[0].Inputs != 4 || st[0].Emitted != 10 || st[0].Keys != 3 || st[0].Outputs != 3 {
			t.Errorf("p=%d: stats = %+v", p, st[0])
		}
	}
}

// TestEveryInputMapped: strided partitioning covers all inputs exactly
// once, for p larger and smaller than the input count.
func TestEveryInputMapped(t *testing.T) {
	for _, p := range []int{1, 3, 7, 32} {
		rt := New(p)
		n := 10
		inputs := make([]int, n)
		for i := range inputs {
			inputs[i] = i
		}
		var mapped int64
		Round(rt, inputs,
			func(i int, emit func(int, struct{})) {
				atomic.AddInt64(&mapped, 1)
				emit(i, struct{}{})
			},
			func(k int, vs []struct{}, emit func(int)) {
				if len(vs) != 1 {
					t.Errorf("key %d mapped %d times", k, len(vs))
				}
				emit(k)
			})
		if mapped != int64(n) {
			t.Fatalf("p=%d: mapped %d inputs, want %d", p, mapped, n)
		}
	}
}

// TestMultipleRoundsAccumulateStats: each Round appends one stats entry.
func TestMultipleRoundsAccumulateStats(t *testing.T) {
	rt := New(2)
	for i := 0; i < 3; i++ {
		Round(rt, []int{1, 2, 3},
			func(i int, emit func(int, int)) { emit(i%2, i) },
			func(k int, vs []int, emit func(int)) { emit(len(vs)) })
	}
	if rt.Rounds() != 3 {
		t.Fatalf("Rounds = %d, want 3", rt.Rounds())
	}
}

// TestStragglerAccounting: an injected slow task shows up as the
// straggler, and other workers accumulate idle wait.
func TestStragglerAccounting(t *testing.T) {
	rt := New(4)
	rt.TaskDelay = func(w int) {
		if w == 0 {
			time.Sleep(20 * time.Millisecond)
		}
	}
	Round(rt, []int{1, 2, 3, 4},
		func(i int, emit func(int, int)) { emit(i, i) },
		func(k int, vs []int, emit func(int)) { emit(k) })
	st := rt.Stats()[0]
	if st.Straggler < 15*time.Millisecond {
		t.Errorf("straggler = %v, want >= 15ms", st.Straggler)
	}
	if st.IdleWait < 30*time.Millisecond {
		t.Errorf("idle wait = %v, want roughly 3 workers x 20ms", st.IdleWait)
	}
}

// TestCostModel: a configured cost model charges per round and per KV
// and records the charge in the stats.
func TestCostModel(t *testing.T) {
	rt := New(2)
	rt.Cost = CostModel{RoundLatency: 10 * time.Millisecond, PerKV: time.Millisecond}
	start := time.Now()
	Round(rt, []int{1, 2, 3},
		func(i int, emit func(int, int)) { emit(i, i) },
		func(k int, vs []int, emit func(int)) { emit(k) })
	elapsed := time.Since(start)
	// 10ms round + 3 KV x 1ms = 13ms minimum.
	if elapsed < 12*time.Millisecond {
		t.Errorf("charged %v, want >= ~13ms", elapsed)
	}
	if got := rt.Stats()[0].SimulatedIO; got != 13*time.Millisecond {
		t.Errorf("SimulatedIO = %v, want 13ms", got)
	}
}

// TestNoCostByDefault: the zero cost model records nothing.
func TestNoCostByDefault(t *testing.T) {
	rt := New(2)
	Round(rt, []int{1},
		func(i int, emit func(int, int)) { emit(i, i) },
		func(k int, vs []int, emit func(int)) { emit(k) })
	if rt.Stats()[0].SimulatedIO != 0 {
		t.Error("cost charged without a model")
	}
}

// TestZeroAndNegativeP: the runtime clamps to one worker.
func TestZeroAndNegativeP(t *testing.T) {
	for _, p := range []int{0, -3} {
		rt := New(p)
		if rt.P() != 1 {
			t.Fatalf("New(%d).P() = %d, want 1", p, rt.P())
		}
	}
}

// TestEmptyInput: a round over no inputs still synchronizes cleanly.
func TestEmptyInput(t *testing.T) {
	rt := New(4)
	out := Round(rt, nil,
		func(i int, emit func(int, int)) { emit(i, i) },
		func(k int, vs []int, emit func(int)) { emit(k) })
	if len(out) != 0 {
		t.Fatalf("out = %v", out)
	}
	if rt.Stats()[0].Inputs != 0 {
		t.Error("stats recorded phantom inputs")
	}
}

// TestReduceSeesAllValuesOfKey: the shuffle groups values correctly
// across mapper partitions.
func TestReduceSeesAllValuesOfKey(t *testing.T) {
	rt := New(5)
	inputs := make([]int, 100)
	for i := range inputs {
		inputs[i] = i
	}
	out := Round(rt, inputs,
		func(i int, emit func(int, int)) { emit(i%7, i) },
		func(k int, vs []int, emit func([2]int)) {
			sum := 0
			for _, v := range vs {
				sum += v
			}
			emit([2]int{k, sum})
		})
	if len(out) != 7 {
		t.Fatalf("keys = %d, want 7", len(out))
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	for k := 0; k < 7; k++ {
		want := 0
		for i := 0; i < 100; i++ {
			if i%7 == k {
				want += i
			}
		}
		if out[k][1] != want {
			t.Errorf("key %d: sum = %d, want %d", k, out[k][1], want)
		}
	}
}
