// Package mapreduce is an in-process simulation of the MapReduce
// execution model used by algorithm EMMR of "Keys for Graphs" (§4): p
// parallel map tasks, a hash shuffle grouping intermediate values by
// key, p parallel reduce tasks, and a synchronization barrier between
// phases. Invariant inputs (the graph, keys, cached d-neighbors) stay
// in memory across rounds, as HaLoop-style caching would keep them on
// the worker disks.
//
// The runtime records per-round statistics — wall time per phase, the
// straggler (slowest map task) time, and data volumes — because the
// paper's EMMR-vs-EMVC comparison is precisely about the costs of the
// synchronization barrier and of shipping intermediate state.
package mapreduce

import (
	"cmp"
	"slices"
	"sync"
	"time"
)

// RoundStats describes one MapReduce round.
type RoundStats struct {
	// Inputs is the number of input records mapped.
	Inputs int
	// Emitted is the number of intermediate key/value pairs shuffled.
	Emitted int
	// Keys is the number of distinct reduce keys.
	Keys int
	// Outputs is the number of records the reducers emitted.
	Outputs int
	// MapWall and ReduceWall are the wall-clock durations of the phases.
	MapWall, ReduceWall time.Duration
	// Straggler is the duration of the slowest map task: the barrier
	// makes every other worker wait this long.
	Straggler time.Duration
	// IdleWait is the summed difference between the straggler and each
	// map task's own duration — time workers spent blocked on the
	// barrier ("blocking of stragglers", §5).
	IdleWait time.Duration
	// SimulatedIO is the charged cluster cost of this round, when a
	// CostModel is configured.
	SimulatedIO time.Duration
}

// CostModel simulates the per-round constants of a real MapReduce
// deployment that an in-process simulation does not naturally pay: job
// scheduling and startup (RoundLatency) and the materialization of
// intermediate key/value pairs to distributed storage (PerKV). The
// paper's EMVC-vs-EMMR gap is dominated by exactly these costs ("the
// I/O bound property and the synchronization policy of MapReduce", §5);
// the cluster-comparison experiment enables the model to reproduce that
// gap, and it is zero (disabled) everywhere else.
type CostModel struct {
	RoundLatency time.Duration
	PerKV        time.Duration
}

// Runtime carries the worker count and accumulates round statistics.
// A Runtime is not safe for concurrent Round calls; engines run rounds
// sequentially (that is the point of the model).
type Runtime struct {
	p     int
	stats []RoundStats
	// TaskDelay, if set, is invoked once per map task with the worker
	// index; tests inject artificial stragglers through it.
	TaskDelay func(worker int)
	// Cost, if non-zero, charges simulated cluster constants per round.
	Cost CostModel
}

// New returns a runtime with p parallel workers (p >= 1).
func New(p int) *Runtime {
	if p < 1 {
		p = 1
	}
	return &Runtime{p: p}
}

// P returns the worker count.
func (rt *Runtime) P() int { return rt.p }

// Stats returns the per-round statistics so far.
func (rt *Runtime) Stats() []RoundStats { return rt.stats }

// Rounds returns the number of rounds executed.
func (rt *Runtime) Rounds() int { return len(rt.stats) }

// Round runs one MapReduce round: mapFn over every input on p workers,
// a shuffle grouping by key, then reduceFn per key on p workers.
// Reducers for different keys run concurrently; emit callbacks are safe
// to call from the task goroutine they were handed to.
//
// Keys are ordered (not merely comparable) because the shuffle sorts
// them — as Hadoop's does — so key-to-reducer assignment and output
// order are deterministic for a given set of map emissions rather
// than inheriting Go's randomized map-iteration order.
func Round[I any, K cmp.Ordered, V any, O any](
	rt *Runtime,
	inputs []I,
	mapFn func(in I, emit func(K, V)),
	reduceFn func(key K, values []V, emit func(O)),
) []O {
	st := RoundStats{Inputs: len(inputs)}

	// ---- Map phase ----
	mapStart := time.Now()
	type mapOut struct {
		kvs  []kv[K, V]
		took time.Duration
	}
	outs := make([]mapOut, rt.p)
	var wg sync.WaitGroup
	for w := 0; w < rt.p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			t0 := time.Now()
			if rt.TaskDelay != nil {
				rt.TaskDelay(w)
			}
			var local []kv[K, V]
			emit := func(k K, v V) { local = append(local, kv[K, V]{k, v}) }
			// Strided partitioning keeps expensive neighboring inputs
			// from landing on one worker.
			for i := w; i < len(inputs); i += rt.p {
				mapFn(inputs[i], emit)
			}
			outs[w] = mapOut{kvs: local, took: time.Since(t0)}
		}(w)
	}
	wg.Wait()
	st.MapWall = time.Since(mapStart)
	for _, o := range outs {
		if o.took > st.Straggler {
			st.Straggler = o.took
		}
	}
	for _, o := range outs {
		st.IdleWait += st.Straggler - o.took
	}

	// ---- Shuffle ----
	groups := make(map[K][]V)
	for _, o := range outs {
		st.Emitted += len(o.kvs)
		for _, pair := range o.kvs {
			groups[pair.k] = append(groups[pair.k], pair.v)
		}
	}
	st.Keys = len(groups)
	keys := make([]K, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	// The sorted shuffle: without it, reducer assignment and the
	// concatenated output order change run to run, and those leaked
	// into the EMMR engine's union order downstream.
	slices.Sort(keys)

	// ---- Reduce phase ----
	reduceStart := time.Now()
	results := make([][]O, rt.p)
	for w := 0; w < rt.p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var local []O
			emit := func(o O) { local = append(local, o) }
			for i := w; i < len(keys); i += rt.p {
				reduceFn(keys[i], groups[keys[i]], emit)
			}
			results[w] = local
		}(w)
	}
	wg.Wait()
	st.ReduceWall = time.Since(reduceStart)

	var out []O
	for _, r := range results {
		out = append(out, r...)
	}
	st.Outputs = len(out)

	// Simulated cluster constants (zero by default).
	if rt.Cost.RoundLatency > 0 || rt.Cost.PerKV > 0 {
		charge := rt.Cost.RoundLatency + time.Duration(st.Emitted)*rt.Cost.PerKV
		st.SimulatedIO = charge
		time.Sleep(charge)
	}

	rt.stats = append(rt.stats, st)
	return out
}

type kv[K comparable, V any] struct {
	k K
	v V
}
