package keys

import (
	"strings"
	"testing"

	"graphkeys/internal/pattern"
)

const paperKeys = `
key Q1 for album {
    x -name_of-> name*
    x -recorded_by-> $y:artist
}
key Q2 for album {
    x -name_of-> name*
    x -release_year-> year*
}
key Q3 for artist {
    x -name_of-> name*
    $a:album -recorded_by-> x
}
key Q4 for company {
    x -name_of-> name*
    _w:company -name_of-> name*
    _w:company -parent_of-> x
    $c:company -parent_of-> x
}
key Q5 for company {
    x -name_of-> name*
    _w:company -name_of-> name*
    x -parent_of-> _w:company
    x -parent_of-> $c:company
}
key Q6 for street {
    x -zip_code-> code*
    x -nation_of-> "UK"
}
`

func paperSet(t *testing.T) *Set {
	t.Helper()
	s, err := ParseString(paperKeys)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return s
}

func TestSetBasics(t *testing.T) {
	s := paperSet(t)
	if s.Cardinality() != 6 {
		t.Fatalf("||Σ|| = %d, want 6", s.Cardinality())
	}
	if s.TotalSize() != 2+2+2+4+4+2 {
		t.Fatalf("|Σ| = %d, want 16", s.TotalSize())
	}
	if got := s.Types(); strings.Join(got, ",") != "album,artist,company,street" {
		t.Fatalf("Types = %v", got)
	}
	if _, ok := s.ByName("Q4"); !ok {
		t.Error("ByName(Q4) missing")
	}
	if _, ok := s.ByName("nosuch"); ok {
		t.Error("ByName(nosuch) found")
	}
	if len(s.Keys()) != 6 {
		t.Error("Keys() wrong length")
	}
}

func TestForTypeOrdering(t *testing.T) {
	s := paperSet(t)
	albums := s.ForType("album")
	if len(albums) != 2 {
		t.Fatalf("album keys = %d", len(albums))
	}
	// Value-based Q2 must sort before recursive Q1.
	if albums[0].Name != "Q2" || albums[1].Name != "Q1" {
		t.Errorf("album key order = %s, %s; want Q2, Q1", albums[0].Name, albums[1].Name)
	}
	if got := s.ForType("nosuch"); got != nil {
		t.Errorf("ForType(nosuch) = %v", got)
	}
}

func TestRadii(t *testing.T) {
	s := paperSet(t)
	if d := s.MaxRadiusForType("album"); d != 1 {
		t.Errorf("album d = %d, want 1", d)
	}
	if d := s.MaxRadiusForType("nosuch"); d != 0 {
		t.Errorf("nosuch d = %d, want 0", d)
	}
	if d := s.MaxRadius(); d != 1 {
		t.Errorf("max d = %d, want 1", d)
	}
}

func TestValueBasedDetection(t *testing.T) {
	s := paperSet(t)
	if !s.HasValueBasedKeyForType("album") {
		t.Error("album has value-based Q2")
	}
	if s.HasValueBasedKeyForType("artist") {
		t.Error("artist has only recursive Q3")
	}
	if s.HasValueBasedKeyForType("nosuch") {
		t.Error("nosuch type cannot have keys")
	}
}

func TestDependencyEdges(t *testing.T) {
	s := paperSet(t)
	dep := s.DependencyEdges()
	if got := dep["album"]; len(got) != 1 || got[0] != "artist" {
		t.Errorf("album deps = %v", got)
	}
	if got := dep["artist"]; len(got) != 1 || got[0] != "album" {
		t.Errorf("artist deps = %v", got)
	}
	if got := dep["company"]; len(got) != 1 || got[0] != "company" {
		t.Errorf("company deps = %v", got)
	}
	if _, ok := dep["street"]; ok {
		t.Error("street must have no deps")
	}
}

func TestLongestChainCyclic(t *testing.T) {
	s := paperSet(t)
	c, cyclic := s.LongestChain()
	// album <-> artist is a 2-cycle; company self-depends.
	if !cyclic {
		t.Error("paper keys are mutually recursive; want cyclic = true")
	}
	if c < 1 {
		t.Errorf("chain length = %d, want >= 1", c)
	}
}

func TestLongestChainAcyclic(t *testing.T) {
	src := `
key K0 for t0 {
    x -p-> v*
}
key K1 for t1 {
    x -p-> v*
    x -q-> $y:t0
}
key K2 for t2 {
    x -p-> v*
    x -q-> $y:t1
}
key K3 for t3 {
    x -p-> v*
    x -q-> $y:t2
}
`
	s, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	c, cyclic := s.LongestChain()
	if cyclic {
		t.Error("acyclic chain flagged cyclic")
	}
	if c != 3 {
		t.Errorf("chain length = %d, want 3 (t3 -> t2 -> t1 -> t0)", c)
	}
}

func TestLongestChainNoDeps(t *testing.T) {
	s, err := ParseString("key K for t {\n x -p-> v*\n}\n")
	if err != nil {
		t.Fatal(err)
	}
	c, cyclic := s.LongestChain()
	if c != 0 || cyclic {
		t.Errorf("got c=%d cyclic=%v, want 0,false", c, cyclic)
	}
}

// TestLongestChainComplexSCC: a diamond of chains feeding a mutually
// recursive pair — the condensation must weight the cycle component
// and still find the longest path through it.
func TestLongestChainComplexSCC(t *testing.T) {
	// t4 -> t3 -> {tA <-> tB} -> t0 and t4 -> t0 directly.
	src := `
key K0 for t0 {
    x -p-> v*
}
key KA for tA {
    x -p-> v*
    x -q-> $y:tB
    x -r-> $z:t0
}
key KB for tB {
    x -p-> v*
    x -q-> $y:tA
}
key K3 for t3 {
    x -p-> v*
    x -q-> $y:tA
}
key K4 for t4 {
    x -p-> v*
    x -q-> $y:t3
    x -r-> $z:t0
}
`
	s, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	c, cyclic := s.LongestChain()
	if !cyclic {
		t.Error("tA <-> tB cycle not detected")
	}
	// Longest path: t4 -> t3 -> (tA,tB component: 2 types) -> t0.
	// Component weighting counts the 2-cycle as 2 steps on the way
	// through, so the chain length must be at least 4.
	if c < 4 {
		t.Errorf("chain = %d, want >= 4", c)
	}
}

// TestLongestChainSelfLoop: a type whose key references its own type
// (like Q4/Q5 for company) is cyclic even as a single node.
func TestLongestChainSelfLoop(t *testing.T) {
	s, err := ParseString(`
key K for company {
    x -name-> n*
    $c:company -parent_of-> x
}
`)
	if err != nil {
		t.Fatal(err)
	}
	_, cyclic := s.LongestChain()
	if !cyclic {
		t.Error("self-dependency not flagged cyclic")
	}
}

func TestDuplicateNameRejected(t *testing.T) {
	src := "key K for t {\n x -p-> v*\n}\nkey K for u {\n x -p-> v*\n}\n"
	if _, err := ParseString(src); err == nil {
		t.Fatal("duplicate key name accepted")
	}
}

func TestEmptyInputRejected(t *testing.T) {
	if _, err := ParseString("# nothing here\n"); err == nil {
		t.Fatal("empty key set accepted")
	}
}

func TestFromNamedValidates(t *testing.T) {
	bad := pattern.Named{Name: "B", Pattern: &pattern.Pattern{
		Nodes: []pattern.Node{{Kind: pattern.Designated, Name: "x", Type: "t"}},
		X:     0,
	}}
	if _, err := FromNamed([]pattern.Named{bad}); err == nil {
		t.Fatal("invalid pattern accepted")
	}
}

func TestFormatRoundTrip(t *testing.T) {
	s := paperSet(t)
	s2, err := ParseString(s.Format())
	if err != nil {
		t.Fatalf("reparse formatted set: %v", err)
	}
	if s2.Cardinality() != s.Cardinality() || s2.TotalSize() != s.TotalSize() {
		t.Error("format round trip changed the set")
	}
}

func TestKeyCaches(t *testing.T) {
	s := paperSet(t)
	q1, _ := s.ByName("Q1")
	if !q1.Recursive || q1.Radius != 1 {
		t.Errorf("Q1 cached meta wrong: recursive=%v radius=%d", q1.Recursive, q1.Radius)
	}
	q2, _ := s.ByName("Q2")
	if q2.Recursive {
		t.Error("Q2 must be value-based")
	}
}
