// Package keys implements key sets Σ for "Keys for Graphs" (Fan et al.,
// PVLDB 2015): named keys grouped per entity type, with the derived
// metadata the algorithms of §4–§5 need — per-type maximum radius d for
// d-neighbor construction, the type-dependency graph induced by
// recursive keys, and the longest dependency chain length c used as a
// workload parameter in §6.
package keys

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"graphkeys/internal/pattern"
)

// Key is one key for entities of type Q.Type(). Radius and Recursive are
// cached from the pattern at construction time.
type Key struct {
	Name string
	*pattern.Pattern
	Radius    int
	Recursive bool
}

// Set is a set Σ of keys. It is immutable after construction and safe
// for concurrent readers.
type Set struct {
	keys   []*Key
	byType map[string][]*Key
	byName map[string]*Key
}

// FromNamed builds a Set from parsed patterns. Key names must be unique;
// every pattern must validate.
func FromNamed(named []pattern.Named) (*Set, error) {
	s := &Set{
		byType: make(map[string][]*Key),
		byName: make(map[string]*Key),
	}
	for _, n := range named {
		if err := n.Validate(); err != nil {
			return nil, fmt.Errorf("keys: %s: %v", n.Name, err)
		}
		if _, dup := s.byName[n.Name]; dup {
			return nil, fmt.Errorf("keys: duplicate key name %q", n.Name)
		}
		k := &Key{
			Name:      n.Name,
			Pattern:   n.Pattern,
			Radius:    n.Radius(),
			Recursive: n.IsRecursive(),
		}
		s.keys = append(s.keys, k)
		s.byName[k.Name] = k
		s.byType[k.Type()] = append(s.byType[k.Type()], k)
	}
	// Within each type, order keys value-based first and then by size.
	// EvalMR tries keys in this order and stops at the first success
	// (early termination), so cheap, non-recursive keys go first. This is
	// the practical payoff of sharing work across the keys of a type
	// (cf. the common-substructure optimization of ref [30] in §4.1).
	for _, ks := range s.byType {
		sort.SliceStable(ks, func(i, j int) bool {
			if ks[i].Recursive != ks[j].Recursive {
				return !ks[i].Recursive
			}
			return ks[i].Size() < ks[j].Size()
		})
	}
	return s, nil
}

// Parse reads keys in the pattern DSL and builds a Set.
func Parse(r io.Reader) (*Set, error) {
	named, err := pattern.Parse(r)
	if err != nil {
		return nil, err
	}
	if len(named) == 0 {
		return nil, fmt.Errorf("keys: no keys in input")
	}
	return FromNamed(named)
}

// ParseString is Parse over a string.
func ParseString(s string) (*Set, error) { return Parse(strings.NewReader(s)) }

// Keys returns all keys in input order (before per-type reordering).
func (s *Set) Keys() []*Key { return s.keys }

// ByName returns the key with the given name.
func (s *Set) ByName(name string) (*Key, bool) {
	k, ok := s.byName[name]
	return k, ok
}

// ForType returns the keys defined on entities of the given type, cheap
// keys first.
func (s *Set) ForType(typeName string) []*Key { return s.byType[typeName] }

// Types returns the entity types some key is defined on, sorted.
func (s *Set) Types() []string {
	out := make([]string, 0, len(s.byType))
	for t := range s.byType {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Cardinality returns ||Σ||, the number of keys.
func (s *Set) Cardinality() int { return len(s.keys) }

// TotalSize returns |Σ| = Σ_{Q∈Σ} |Q|, the total number of pattern
// triples.
func (s *Set) TotalSize() int {
	n := 0
	for _, k := range s.keys {
		n += k.Size()
	}
	return n
}

// MaxRadiusForType returns the maximum radius d over the keys defined on
// the given type (§4.1: the bound for the d-neighbor G^d of entities of
// that type). It returns 0 if no key is defined on the type.
func (s *Set) MaxRadiusForType(typeName string) int {
	d := 0
	for _, k := range s.byType[typeName] {
		if k.Radius > d {
			d = k.Radius
		}
	}
	return d
}

// MaxRadius returns the maximum radius over all keys in Σ.
func (s *Set) MaxRadius() int {
	d := 0
	for _, k := range s.keys {
		if k.Radius > d {
			d = k.Radius
		}
	}
	return d
}

// HasValueBasedKeyForType reports whether some non-recursive key is
// defined on the type. The entity-dependency optimization of §4.2 seeds
// the first round with pairs whose types have value-based keys only.
func (s *Set) HasValueBasedKeyForType(typeName string) bool {
	for _, k := range s.byType[typeName] {
		if !k.Recursive {
			return true
		}
	}
	return false
}

// DependencyEdges returns the type-dependency relation induced by
// recursive keys: τ -> τ' iff some key for τ has an entity variable of
// type τ'. Identifying a pair of type τ may require having identified a
// pair of type τ' first.
func (s *Set) DependencyEdges() map[string][]string {
	dep := make(map[string][]string)
	for t, ks := range s.byType {
		seen := make(map[string]bool)
		for _, k := range ks {
			for _, t2 := range k.EntityVarTypes() {
				if !seen[t2] {
					seen[t2] = true
					dep[t] = append(dep[t], t2)
				}
			}
		}
		sort.Strings(dep[t])
	}
	return dep
}

// LongestChain computes c, the length of the longest dependency chain in
// Σ (§6 workload parameter): the longest path in the type-dependency
// graph, counted in edges. If the dependency graph is cyclic (mutually
// recursive keys, like Q1/Q3 of the paper), cyclic is true and the chain
// length counts each strongly connected component once, weighted by its
// size — the value is then a lower bound on the serialization depth.
func (s *Set) LongestChain() (c int, cyclic bool) {
	dep := s.DependencyEdges()
	// Collect the vertex set: types with keys plus referenced types.
	idx := make(map[string]int)
	var names []string
	add := func(t string) {
		if _, ok := idx[t]; !ok {
			idx[t] = len(names)
			names = append(names, t)
		}
	}
	for t, ds := range dep {
		add(t)
		for _, d := range ds {
			add(d)
		}
	}
	for t := range s.byType {
		add(t)
	}
	n := len(names)
	adj := make([][]int, n)
	for t, ds := range dep {
		for _, d := range ds {
			adj[idx[t]] = append(adj[idx[t]], idx[d])
		}
	}
	comp, sizes, compAdj, hasSelfLoop := tarjanCondense(adj)
	for v := range adj {
		if sizes[comp[v]] > 1 {
			cyclic = true
		}
	}
	for _, v := range hasSelfLoop {
		if v {
			cyclic = true
		}
	}
	// Longest path in the condensation DAG, weighting a component of
	// size k as k-1 internal steps plus 1 per crossing edge.
	memo := make([]int, len(sizes))
	for i := range memo {
		memo[i] = -1
	}
	var dfs func(int) int
	dfs = func(u int) int {
		if memo[u] >= 0 {
			return memo[u]
		}
		best := sizes[u] - 1
		for _, v := range compAdj[u] {
			if l := dfs(v) + sizes[u]; l > best {
				best = l
			}
		}
		memo[u] = best
		return best
	}
	for u := range sizes {
		if l := dfs(u); l > c {
			c = l
		}
	}
	return c, cyclic
}

// tarjanCondense computes strongly connected components of adj and the
// condensation DAG. It returns the component index of each vertex, the
// size of each component, the condensation adjacency, and per-component
// self-loop flags (a vertex with an edge to itself).
func tarjanCondense(adj [][]int) (comp []int, sizes []int, compAdj [][]int, selfLoop []bool) {
	n := len(adj)
	comp = make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	counter := 0
	nComp := 0

	// Iterative Tarjan to avoid deep recursion on long chains.
	type frame struct{ v, ei int }
	for start := 0; start < n; start++ {
		if index[start] != -1 {
			continue
		}
		frames := []frame{{start, 0}}
		index[start] = counter
		low[start] = counter
		counter++
		stack = append(stack, start)
		onStack[start] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.ei < len(adj[f.v]) {
				w := adj[f.v][f.ei]
				f.ei++
				if index[w] == -1 {
					index[w] = counter
					low[w] = counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{w, 0})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 && low[v] < low[frames[len(frames)-1].v] {
				low[frames[len(frames)-1].v] = low[v]
			}
			if low[v] == index[v] {
				size := 0
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = nComp
					size++
					if w == v {
						break
					}
				}
				sizes = append(sizes, size)
				nComp++
			}
		}
	}
	compAdj = make([][]int, nComp)
	selfLoop = make([]bool, nComp)
	edgeSeen := make(map[[2]int]bool)
	for v := range adj {
		for _, w := range adj[v] {
			cu, cw := comp[v], comp[w]
			if cu == cw {
				if v == w {
					selfLoop[cu] = true
				}
				continue
			}
			if !edgeSeen[[2]int{cu, cw}] {
				edgeSeen[[2]int{cu, cw}] = true
				compAdj[cu] = append(compAdj[cu], cw)
			}
		}
	}
	return comp, sizes, compAdj, selfLoop
}

// Format renders the whole set back into the DSL.
func (s *Set) Format() string {
	var b strings.Builder
	for i, k := range s.keys {
		if i > 0 {
			b.WriteString("\n")
		}
		b.WriteString(pattern.Format(pattern.Named{Name: k.Name, Pattern: k.Pattern}))
	}
	return b.String()
}
