package graphkeys

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// musicGraph rebuilds G1 of the paper through the public API.
func musicGraph(t *testing.T) *Graph {
	t.Helper()
	g := NewGraph()
	for _, e := range []struct{ id, typ string }{
		{"alb1", "album"}, {"alb2", "album"}, {"alb3", "album"},
		{"art1", "artist"}, {"art2", "artist"}, {"art3", "artist"},
	} {
		if err := g.AddEntity(e.id, e.typ); err != nil {
			t.Fatal(err)
		}
	}
	for _, tr := range [][3]string{
		{"alb1", "name_of", "Anthology 2"},
		{"alb2", "name_of", "Anthology 2"},
		{"alb3", "name_of", "Anthology 2"},
		{"alb1", "release_year", "1996"},
		{"alb2", "release_year", "1996"},
		{"art1", "name_of", "The Beatles"},
		{"art2", "name_of", "The Beatles"},
		{"art3", "name_of", "John Farnham"},
	} {
		if err := g.AddValueTriple(tr[0], tr[1], tr[2]); err != nil {
			t.Fatal(err)
		}
	}
	for _, tr := range [][3]string{
		{"alb1", "recorded_by", "art1"},
		{"alb2", "recorded_by", "art2"},
		{"alb3", "recorded_by", "art3"},
	} {
		if err := g.AddEntityTriple(tr[0], tr[1], tr[2]); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

const musicKeysDSL = `
key Q1 for album {
    x -name_of-> name*
    x -recorded_by-> $y:artist
}
key Q2 for album {
    x -name_of-> name*
    x -release_year-> year*
}
key Q3 for artist {
    x -name_of-> name*
    $a:album -recorded_by-> x
}
`

func TestMatchAllEngines(t *testing.T) {
	g := musicGraph(t)
	ks, err := ParseKeys(musicKeysDSL)
	if err != nil {
		t.Fatal(err)
	}
	engines := []Engine{Chase, MapReduce, MapReduceVF2, MapReduceOpt, VertexCentric, VertexCentricOpt}
	for _, eng := range engines {
		t.Run(eng.String(), func(t *testing.T) {
			res, err := Match(g, ks, Options{Engine: eng, Workers: 3})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Matches) != 2 {
				t.Fatalf("matches = %v, want 2 pairs", res.Matches)
			}
			want := map[Pair]bool{
				{A: "alb1", B: "alb2"}: true,
				{A: "art1", B: "art2"}: true,
			}
			for _, m := range res.Matches {
				if !want[m] && !want[Pair{A: m.B, B: m.A}] {
					t.Errorf("unexpected match %v", m)
				}
			}
			if len(res.Classes) != 2 {
				t.Errorf("classes = %v, want 2", res.Classes)
			}
			if res.Engine != eng {
				t.Errorf("result engine = %v", res.Engine)
			}
		})
	}
}

// TestFullCandidateSweepOption: the FullCandidateSweep escape hatch
// yields the same matches as the default value-indexed candidate
// generation, on every engine.
func TestFullCandidateSweepOption(t *testing.T) {
	g := musicGraph(t)
	ks, err := ParseKeys(musicKeysDSL)
	if err != nil {
		t.Fatal(err)
	}
	engines := []Engine{Chase, MapReduce, MapReduceVF2, MapReduceOpt, VertexCentric, VertexCentricOpt}
	for _, eng := range engines {
		t.Run(eng.String(), func(t *testing.T) {
			indexed, err := Match(g, ks, Options{Engine: eng, Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			full, err := Match(g, ks, Options{Engine: eng, Workers: 2, FullCandidateSweep: true})
			if err != nil {
				t.Fatal(err)
			}
			if len(indexed.Matches) != len(full.Matches) {
				t.Fatalf("indexed found %v, full sweep %v", indexed.Matches, full.Matches)
			}
			for i := range indexed.Matches {
				if indexed.Matches[i] != full.Matches[i] {
					t.Fatalf("match %d differs: indexed %v, full %v", i, indexed.Matches[i], full.Matches[i])
				}
			}
		})
	}
}

func TestMatchClassesGrouping(t *testing.T) {
	g := NewGraph()
	for i := 1; i <= 3; i++ {
		if err := g.AddEntity(fmt.Sprintf("a%d", i), "album"); err != nil {
			t.Fatal(err)
		}
		if err := g.AddValueTriple(fmt.Sprintf("a%d", i), "name_of", "N"); err != nil {
			t.Fatal(err)
		}
		if err := g.AddValueTriple(fmt.Sprintf("a%d", i), "release_year", "2000"); err != nil {
			t.Fatal(err)
		}
	}
	ks, err := ParseKeys("key Q2 for album {\n x -name_of-> n*\n x -release_year-> y*\n}")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Match(g, ks, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) != 3 {
		t.Fatalf("matches = %v, want all 3 pairs", res.Matches)
	}
	if len(res.Classes) != 1 || len(res.Classes[0]) != 3 {
		t.Fatalf("classes = %v, want one class of 3", res.Classes)
	}
	if res.Classes[0][0] != "a1" {
		t.Errorf("class members unsorted: %v", res.Classes[0])
	}
}

func TestValidate(t *testing.T) {
	g := musicGraph(t)
	ks, err := ParseKeys(musicKeysDSL)
	if err != nil {
		t.Fatal(err)
	}
	vs, err := Validate(g, ks, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || vs[0].Key != "Q2" {
		t.Fatalf("violations = %+v, want one Q2 violation", vs)
	}
}

func TestExplain(t *testing.T) {
	g := musicGraph(t)
	ks, err := ParseKeys(musicKeysDSL)
	if err != nil {
		t.Fatal(err)
	}
	proof, err := Explain(g, ks, "art1", "art2", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(proof.Steps) != 2 {
		t.Fatalf("proof steps = %+v, want 2", proof.Steps)
	}
	if proof.Steps[0].Key != "Q2" || proof.Steps[1].Key != "Q3" {
		t.Errorf("proof keys = %s, %s; want Q2 then Q3", proof.Steps[0].Key, proof.Steps[1].Key)
	}
	if len(proof.Steps[1].Requires) != 1 {
		t.Errorf("Q3 step requires %v", proof.Steps[1].Requires)
	}
	if _, err := Explain(g, ks, "alb1", "alb3", Options{}); err == nil {
		t.Error("Explain succeeded for unidentified pair")
	}
	if _, err := Explain(g, ks, "ghost", "alb1", Options{}); err == nil {
		t.Error("Explain accepted unknown entity")
	}
}

func TestKeySetMeta(t *testing.T) {
	ks, err := ParseKeys(musicKeysDSL)
	if err != nil {
		t.Fatal(err)
	}
	if ks.Len() != 3 || ks.Size() != 6 {
		t.Errorf("Len=%d Size=%d", ks.Len(), ks.Size())
	}
	if got := ks.Names(); strings.Join(got, ",") != "Q1,Q2,Q3" {
		t.Errorf("Names = %v", got)
	}
	if ks.MaxRadius() != 1 {
		t.Errorf("MaxRadius = %d", ks.MaxRadius())
	}
	if _, cyclic := ks.LongestChain(); !cyclic {
		t.Error("Q1/Q3 are mutually recursive")
	}
	reparsed, err := ParseKeys(ks.Format())
	if err != nil {
		t.Fatalf("Format round trip: %v", err)
	}
	if reparsed.Len() != ks.Len() {
		t.Error("Format round trip changed the set")
	}
}

func TestGraphAccessorsAndErrors(t *testing.T) {
	g := musicGraph(t)
	if g.NumTriples() != 11 || g.NumEntities() != 6 {
		t.Errorf("NumTriples=%d NumEntities=%d", g.NumTriples(), g.NumEntities())
	}
	if tn, ok := g.HasEntity("alb1"); !ok || tn != "album" {
		t.Errorf("HasEntity(alb1) = %q, %v", tn, ok)
	}
	if _, ok := g.HasEntity("ghost"); ok {
		t.Error("HasEntity(ghost) = true")
	}
	if err := g.AddEntity("alb1", "artist"); err == nil {
		t.Error("type conflict accepted")
	}
	if err := g.AddValueTriple("ghost", "p", "v"); err == nil {
		t.Error("unknown subject accepted")
	}
	if err := g.AddEntityTriple("alb1", "p", "ghost"); err == nil {
		t.Error("unknown object accepted")
	}
	if err := g.AddEntityTriple("ghost", "p", "alb1"); err == nil {
		t.Error("unknown subject accepted")
	}
}

func TestGraphSerializationRoundTrip(t *testing.T) {
	g := musicGraph(t)
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := LoadGraph(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumTriples() != g.NumTriples() {
		t.Error("round trip changed the graph")
	}
	ks, err := ParseKeys(musicKeysDSL)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Match(g, ks, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Match(g2, ks, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Matches) != len(r2.Matches) {
		t.Error("round trip changed the match result")
	}
}

func TestSimilarityOption(t *testing.T) {
	g := NewGraph()
	if err := g.AddEntity("a", "album"); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEntity("b", "album"); err != nil {
		t.Fatal(err)
	}
	_ = g.AddValueTriple("a", "name_of", "anthology")
	_ = g.AddValueTriple("b", "name_of", "ANTHOLOGY")
	_ = g.AddValueTriple("a", "release_year", "1996")
	_ = g.AddValueTriple("b", "release_year", "1996")
	ks, err := ParseKeys("key Q2 for album {\n x -name_of-> n*\n x -release_year-> y*\n}")
	if err != nil {
		t.Fatal(err)
	}
	exact, err := Match(g, ks, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(exact.Matches) != 0 {
		t.Error("exact match found case-mismatched duplicate")
	}
	ci, err := Match(g, ks, Options{ValueEq: strings.EqualFold})
	if err != nil {
		t.Fatal(err)
	}
	if len(ci.Matches) != 1 {
		t.Error("similarity match missed the duplicate")
	}
}

func TestOptionsValidation(t *testing.T) {
	g := musicGraph(t)
	ks, err := ParseKeys(musicKeysDSL)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Match(nil, ks, Options{}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := Match(g, nil, Options{}); err == nil {
		t.Error("nil keys accepted")
	}
	if _, err := Match(g, ks, Options{Engine: Engine(42)}); err == nil {
		t.Error("unknown engine accepted")
	}
	if _, err := Validate(nil, ks, Options{}); err == nil {
		t.Error("Validate nil graph accepted")
	}
}

func TestEngineString(t *testing.T) {
	names := map[Engine]string{
		Chase: "Chase", MapReduce: "EMMR", MapReduceVF2: "EMVF2MR",
		MapReduceOpt: "EMOptMR", VertexCentric: "EMVC", VertexCentricOpt: "EMOptVC",
		Engine(9): "Engine(9)",
	}
	for e, want := range names {
		if e.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(e), e.String(), want)
		}
	}
}

func TestParseKeysErrors(t *testing.T) {
	if _, err := ParseKeys("nonsense"); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ParseKeys(""); err == nil {
		t.Error("empty key set accepted")
	}
}
