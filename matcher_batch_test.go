package graphkeys

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

// batchFixture builds a graph of grouped persons; deltas built by
// batchDelta stay inside one group, so batch members are independent.
func batchFixture(t *testing.T, groups, perGroup int) (*Graph, *KeySet) {
	t.Helper()
	g := NewGraph()
	for w := 0; w < groups; w++ {
		for i := 0; i < perGroup; i++ {
			id := fmt.Sprintf("g%d-p%d", w, i)
			if err := g.AddEntity(id, "person"); err != nil {
				t.Fatal(err)
			}
			if err := g.AddValueTriple(id, "email", fmt.Sprintf("g%d-mail%d", w, i/2)); err != nil {
				t.Fatal(err)
			}
		}
	}
	ks, err := ParseKeys(`key P for person {
		x -email-> e*
	}`)
	if err != nil {
		t.Fatal(err)
	}
	return g, ks
}

func batchDelta(w, round, perGroup int) *Delta {
	i := round % perGroup
	id := fmt.Sprintf("g%d-p%d", w, i)
	d := NewDelta()
	d.RemoveValueTriple(id, "email", fmt.Sprintf("g%d-mail%d", w, i/2))
	d.AddValueTriple(id, "email", fmt.Sprintf("g%d-mail%d", w, (i/2+round)%perGroup))
	if round%5 == 2 {
		other := fmt.Sprintf("g%d-p%d", w, (i+1)%perGroup)
		d.RemoveEntity(other)
		d.AddEntity(other, "person")
		d.AddValueTriple(other, "email", fmt.Sprintf("g%d-fresh%d", w, round))
	}
	return d
}

// TestApplyBatchMatchesSerialApplication: concurrent ApplyBatch over
// disjoint-group deltas, with readers hammering the matcher, must end
// in exactly the state serial per-delta application reaches. Run under
// -race by the CI race job.
func TestApplyBatchMatchesSerialApplication(t *testing.T) {
	const groups = 8
	const perGroup = 10
	const rounds = 6

	g, ks := batchFixture(t, groups, perGroup)
	m, err := NewMatcher(g, ks, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				a := fmt.Sprintf("g%d-p%d", (r+i)%groups, i%perGroup)
				b := fmt.Sprintf("g%d-p%d", (r+i)%groups, (i+2)%perGroup)
				_ = m.Same(a, b)
				if i%9 == 0 {
					_ = m.Result()
				}
				_, _ = m.Graph().HasEntity(a)
			}
		}(r)
	}
	for round := 0; round < rounds; round++ {
		batch := make([]*Delta, groups)
		for w := 0; w < groups; w++ {
			batch[w] = batchDelta(w, round, perGroup)
		}
		if _, _, err := m.ApplyBatch(batch); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	stop.Store(true)
	wg.Wait()

	// Serial reference: same deltas, one at a time, on a fresh fixture.
	sg, _ := batchFixture(t, groups, perGroup)
	sm, err := NewMatcher(sg, ks, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < rounds; round++ {
		for w := 0; w < groups; w++ {
			if _, _, err := sm.Apply(batchDelta(w, round, perGroup)); err != nil {
				t.Fatalf("serial round %d group %d: %v", round, w, err)
			}
		}
	}
	var got, want bytes.Buffer
	if err := m.Graph().Write(&got); err != nil {
		t.Fatal(err)
	}
	if err := sm.Graph().Write(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("batched graph diverges from serial:\nbatched:\n%s\nserial:\n%s", got.String(), want.String())
	}
	if !reflect.DeepEqual(sortedPairs(m.Result().Matches), sortedPairs(sm.Result().Matches)) {
		t.Fatalf("batched pairs diverge from serial:\nbatched: %v\nserial:  %v",
			m.Result().Matches, sm.Result().Matches)
	}
}

// TestApplyBatchPartialFailure: a batch member that fails validation
// is skipped and reported while the rest of the batch applies.
func TestApplyBatchPartialFailure(t *testing.T) {
	g, ks := batchFixture(t, 2, 4)
	m, err := NewMatcher(g, ks, Options{})
	if err != nil {
		t.Fatal(err)
	}
	good := NewDelta().AddValueTriple("g0-p0", "email", "new-mail")
	bad := NewDelta().AddEntityTriple("g0-p0", "knows", "no-such-entity")
	added, _, err := m.ApplyBatch([]*Delta{good, bad})
	if err == nil {
		t.Fatal("bad batch member did not surface an error")
	}
	_ = added
	// The good delta applied: p0 now shares new-mail with nobody, but
	// the triple must be present.
	found := false
	m.Graph().EachTriple(func(s EntityID, p, o string, isVal bool) {
		if s == "g0-p0" && p == "email" && o == "new-mail" && isVal {
			found = true
		}
	})
	if !found {
		t.Fatal("good batch member did not apply")
	}
	// And the state is still coherent with a full re-chase.
	full, err := Match(m.Graph(), ks, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.Result().Matches, full.Matches) {
		t.Fatal("matcher state diverges from full re-chase after partial batch")
	}
}

// TestWriterCoalesces: a burst of small deltas through the async
// Writer lands in fewer batches than deltas and ends in the serial
// state. Every delta targets a distinct entity — Writer batches may
// reorder conflicting deltas, so a stream's deltas must be
// independent (the Writer contract).
func TestWriterCoalesces(t *testing.T) {
	const groups = 6
	const perGroup = 8
	const deltas = groups * perGroup

	// writerDelta targets exactly entity i, so all deltas commute.
	writerDelta := func(i int) *Delta {
		w, j := i/perGroup, i%perGroup
		id := fmt.Sprintf("g%d-p%d", w, j)
		d := NewDelta()
		d.RemoveValueTriple(id, "email", fmt.Sprintf("g%d-mail%d", w, j/2))
		d.AddValueTriple(id, "email", fmt.Sprintf("g%d-mail%d", w, (j/2+3)%perGroup))
		if i%5 == 2 {
			d.RemoveEntity(id)
			d.AddEntity(id, "person")
			d.AddValueTriple(id, "email", fmt.Sprintf("g%d-fresh%d", w, i))
		}
		return d
	}

	g, ks := batchFixture(t, groups, perGroup)
	m, err := NewMatcher(g, ks, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	w := m.NewWriter()
	for i := 0; i < deltas; i++ {
		if err := w.Apply(writerDelta(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	batches, applied := w.Stats()
	if applied != deltas {
		t.Fatalf("writer applied %d deltas, want %d", applied, deltas)
	}
	if batches == 0 || batches > deltas {
		t.Fatalf("writer used %d batches for %d deltas", batches, deltas)
	}
	// nil deltas are ignored; real Applies after Close fail.
	if err := w.Apply(nil); err != nil {
		t.Fatalf("nil delta errored: %v", err)
	}
	if err := w.Apply(writerDelta(0)); err == nil {
		t.Fatal("Apply after Close succeeded")
	}

	sg, _ := batchFixture(t, groups, perGroup)
	sm, err := NewMatcher(sg, ks, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < deltas; i++ {
		if _, _, err := sm.Apply(writerDelta(i)); err != nil {
			t.Fatal(err)
		}
	}
	var got, want bytes.Buffer
	if err := m.Graph().Write(&got); err != nil {
		t.Fatal(err)
	}
	if err := sm.Graph().Write(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("writer-applied graph diverges from serial application")
	}
	if !reflect.DeepEqual(sortedPairs(m.Result().Matches), sortedPairs(sm.Result().Matches)) {
		t.Fatal("writer-applied pairs diverge from serial application")
	}
}
