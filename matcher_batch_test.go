package graphkeys

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"graphkeys/internal/graph"
	"graphkeys/internal/testutil"
)

// wrapDelta lifts a generated graph-level delta into the public Delta
// the Matcher applies; wrapDeltas lifts a whole batch. The shared
// testutil generator works at the graph level so the inc, plan and WAL
// tests can drive it too.
func wrapDelta(gd *graph.Delta) *Delta { return &Delta{d: *gd} }

func wrapDeltas(gds []*graph.Delta) []*Delta {
	out := make([]*Delta, len(gds))
	for i, gd := range gds {
		out[i] = wrapDelta(gd)
	}
	return out
}

// batchFixture builds the grouped fixture of the shared generator:
// deltas at Overlap 0 stay inside one group, so batch members are
// independent.
func batchFixture(t *testing.T, gen *testutil.Generator) (*Graph, *KeySet) {
	t.Helper()
	g := NewGraph()
	if _, err := g.g.ApplyDelta(gen.Seed()); err != nil {
		t.Fatal(err)
	}
	ks, err := ParseKeys(gen.Keys())
	if err != nil {
		t.Fatal(err)
	}
	return g, ks
}

// TestApplyBatchMatchesSerialApplication: concurrent ApplyBatch over
// disjoint-group deltas, with readers hammering the matcher, must end
// in exactly the state serial per-delta application reaches. Run under
// -race by the CI race job.
func TestApplyBatchMatchesSerialApplication(t *testing.T) {
	const groups = 8
	const perGroup = 10
	const rounds = 6

	gen := testutil.New(testutil.Config{
		Seed:        3,
		Groups:      groups,
		PerGroup:    perGroup,
		EntityChurn: true,
		Coalesce:    true,
	})
	g, ks := batchFixture(t, gen)
	m, err := NewMatcher(g, ks, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				a := fmt.Sprintf("g%d-p%d", (r+i)%groups, i%perGroup)
				b := fmt.Sprintf("g%d-p%d", (r+i)%groups, (i+2)%perGroup)
				_ = m.Same(a, b)
				if i%9 == 0 {
					_ = m.Result()
				}
				_, _ = m.Graph().HasEntity(a)
			}
		}(r)
	}
	for round := 0; round < rounds; round++ {
		if _, _, err := m.ApplyBatch(wrapDeltas(gen.Round(round))); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	stop.Store(true)
	wg.Wait()

	// Serial reference: same deltas, one at a time, on a fresh fixture.
	sg, _ := batchFixture(t, gen)
	sm, err := NewMatcher(sg, ks, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < rounds; round++ {
		for w := 0; w < groups; w++ {
			if _, _, err := sm.Apply(wrapDelta(gen.Delta(w, round))); err != nil {
				t.Fatalf("serial round %d group %d: %v", round, w, err)
			}
		}
	}
	var got, want bytes.Buffer
	if err := m.Graph().Write(&got); err != nil {
		t.Fatal(err)
	}
	if err := sm.Graph().Write(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("batched graph diverges from serial:\nbatched:\n%s\nserial:\n%s", got.String(), want.String())
	}
	if !reflect.DeepEqual(sortedPairs(m.Result().Matches), sortedPairs(sm.Result().Matches)) {
		t.Fatalf("batched pairs diverge from serial:\nbatched: %v\nserial:  %v",
			m.Result().Matches, sm.Result().Matches)
	}
}

// TestApplyBatchPartialFailure: a batch member that fails validation
// is skipped and reported while the rest of the batch applies.
func TestApplyBatchPartialFailure(t *testing.T) {
	gen := testutil.New(testutil.Config{Seed: 3, Groups: 2, PerGroup: 4})
	g, ks := batchFixture(t, gen)
	m, err := NewMatcher(g, ks, Options{})
	if err != nil {
		t.Fatal(err)
	}
	good := NewDelta().AddValueTriple("g0-p0", "email", "new-mail")
	bad := NewDelta().AddEntityTriple("g0-p0", "knows", "no-such-entity")
	added, _, err := m.ApplyBatch([]*Delta{good, bad})
	if err == nil {
		t.Fatal("bad batch member did not surface an error")
	}
	_ = added
	// The good delta applied: p0 now shares new-mail with nobody, but
	// the triple must be present.
	found := false
	m.Graph().EachTriple(func(s EntityID, p, o string, isVal bool) {
		if s == "g0-p0" && p == "email" && o == "new-mail" && isVal {
			found = true
		}
	})
	if !found {
		t.Fatal("good batch member did not apply")
	}
	// And the state is still coherent with a full re-chase.
	full, err := Match(m.Graph(), ks, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.Result().Matches, full.Matches) {
		t.Fatal("matcher state diverges from full re-chase after partial batch")
	}
}

// TestWriterCoalesces: a burst of small deltas through the async
// Writer lands in fewer batches than deltas and ends in the serial
// state. The generator's Independent stream targets a distinct entity
// per delta — Writer batches may reorder conflicting deltas, so a
// stream's deltas must be independent (the Writer contract).
func TestWriterCoalesces(t *testing.T) {
	const groups = 6
	const perGroup = 8
	const deltas = groups * perGroup

	gen := testutil.New(testutil.Config{
		Seed:        9,
		Groups:      groups,
		PerGroup:    perGroup,
		EntityChurn: true,
	})
	writerDelta := func(i int) *Delta { return wrapDelta(gen.Independent(i)) }

	g, ks := batchFixture(t, gen)
	m, err := NewMatcher(g, ks, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	w := m.NewWriter()
	for i := 0; i < deltas; i++ {
		if err := w.Apply(writerDelta(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Deltas != deltas {
		t.Fatalf("writer processed %d deltas, want %d", st.Deltas, deltas)
	}
	if st.Failed != 0 {
		t.Fatalf("writer reports %d failed deltas, want 0", st.Failed)
	}
	if st.Batches == 0 || st.Batches > deltas {
		t.Fatalf("writer used %d batches for %d deltas", st.Batches, deltas)
	}
	// nil deltas are ignored; real Applies after Close fail.
	if err := w.Apply(nil); err != nil {
		t.Fatalf("nil delta errored: %v", err)
	}
	if err := w.Apply(writerDelta(0)); err == nil {
		t.Fatal("Apply after Close succeeded")
	}

	sg, _ := batchFixture(t, gen)
	sm, err := NewMatcher(sg, ks, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < deltas; i++ {
		if _, _, err := sm.Apply(writerDelta(i)); err != nil {
			t.Fatal(err)
		}
	}
	var got, want bytes.Buffer
	if err := m.Graph().Write(&got); err != nil {
		t.Fatal(err)
	}
	if err := sm.Graph().Write(&want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatal("writer-applied graph diverges from serial application")
	}
	if !reflect.DeepEqual(sortedPairs(m.Result().Matches), sortedPairs(sm.Result().Matches)) {
		t.Fatal("writer-applied pairs diverge from serial application")
	}
}
