package graphkeys

import (
	"fmt"

	"graphkeys/internal/discover"
	"graphkeys/internal/keys"
	"graphkeys/internal/pattern"
)

// DiscoverOptions bounds key discovery (the §7 future-work direction of
// the paper, provided here as a baseline levelwise miner).
type DiscoverOptions struct {
	// MaxAttrs bounds the number of triples adjacent to x in a mined
	// key; 0 means 3.
	MaxAttrs int
	// MinSupport is the minimum fraction of entities of the type that
	// must carry all the key's attributes; 0 means 0.5.
	MinSupport float64
	// AllowRecursive also proposes keys with an entity variable.
	AllowRecursive bool
}

// DiscoveredKey is a mined key with its quality measures.
type DiscoveredKey struct {
	// Name is the generated key name; DSL is the key in the key DSL,
	// parseable by ParseKeys.
	Name, DSL string
	// Support is the fraction of entities of the type the key applies
	// to; Recursive reports whether it contains an entity variable.
	Support   float64
	Recursive bool
}

// DiscoverKeys mines keys for entities of the given type that hold on g
// (no two distinct entities coincide) and meet the support threshold.
// Results are minimal (no proposed key is a superset of another) and
// ordered smallest-first.
func DiscoverKeys(g *Graph, typeName string, opts DiscoverOptions) ([]DiscoveredKey, error) {
	if g == nil {
		return nil, fmt.Errorf("graphkeys: DiscoverKeys requires a graph")
	}
	cands, err := discover.Discover(g.g, typeName, discover.Options{
		MaxAttrs:       opts.MaxAttrs,
		MinSupport:     opts.MinSupport,
		AllowRecursive: opts.AllowRecursive,
	})
	if err != nil {
		return nil, err
	}
	out := make([]DiscoveredKey, 0, len(cands))
	for _, c := range cands {
		out = append(out, DiscoveredKey{
			Name:      c.Key.Name,
			DSL:       pattern.Format(c.Key),
			Support:   c.Support,
			Recursive: c.Recursive,
		})
	}
	return out, nil
}

// KeySetFromDiscovered bundles mined keys into a KeySet usable with
// Match and Validate.
func KeySetFromDiscovered(ks []DiscoveredKey) (*KeySet, error) {
	var dsl string
	for _, k := range ks {
		dsl += k.DSL + "\n"
	}
	set, err := keys.ParseString(dsl)
	if err != nil {
		return nil, err
	}
	return &KeySet{set: set}, nil
}
