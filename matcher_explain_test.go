package graphkeys_test

import (
	"fmt"
	"testing"

	"graphkeys"
)

// tripleKey flattens a triple for set membership.
func tripleKey(s, p, o string, isVal bool) string {
	return fmt.Sprintf("%s\x00%s\x00%s\x00%v", s, p, o, isVal)
}

// verifyExplanation replays the witness chain against the live graph:
// every step's Requires must already be connected by earlier steps,
// every Uses triple must exist in the graph right now (the chain
// explains the current state, not a stale one), and the replayed
// relation must connect the explained pair.
func verifyExplanation(t *testing.T, g *graphkeys.Graph, ex *graphkeys.Explanation) {
	t.Helper()
	triples := map[string]bool{}
	g.EachTriple(func(s, p, o string, isVal bool) {
		triples[tripleKey(s, p, o, isVal)] = true
	})

	parent := map[graphkeys.EntityID]graphkeys.EntityID{}
	var find func(x graphkeys.EntityID) graphkeys.EntityID
	find = func(x graphkeys.EntityID) graphkeys.EntityID {
		p, ok := parent[x]
		if !ok || p == x {
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	same := func(a, b graphkeys.EntityID) bool { return a == b || find(a) == find(b) }
	union := func(a, b graphkeys.EntityID) { parent[find(a)] = find(b) }

	for i, st := range ex.Steps {
		if st.Key == "" {
			t.Fatalf("step %d (%s, %s): empty key name", i, st.A, st.B)
		}
		for _, r := range st.Requires {
			if !same(r.A, r.B) {
				t.Fatalf("step %d (%s, %s): requires (%s, %s) not established by earlier steps",
					i, st.A, st.B, r.A, r.B)
			}
		}
		for _, u := range st.Uses {
			if !triples[tripleKey(u.Subject, u.Predicate, u.Object, u.ObjectIsValue)] {
				t.Fatalf("step %d (%s, %s): uses triple (%s, %s, %s) absent from the graph",
					i, st.A, st.B, u.Subject, u.Predicate, u.Object)
			}
		}
		union(st.A, st.B)
	}
	if ex.A != ex.B && !same(ex.A, ex.B) {
		t.Fatalf("witness chain does not connect (%s, %s)", ex.A, ex.B)
	}
}

func TestMatcherExplainValueKey(t *testing.T) {
	g := musicGraph(t)
	m, err := graphkeys.NewMatcher(g, musicKeys(t), graphkeys.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := m.Explain("alb1", "alb2")
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Steps) == 0 {
		t.Fatal("empty witness chain for an identified pair")
	}
	verifyExplanation(t, g, ex)
	// The chain must bottom out in a value-only derivation: at least
	// one step with no prior identifications required.
	base := false
	for _, st := range ex.Steps {
		if len(st.Requires) == 0 {
			base = true
		}
		if st.Seq != 0 {
			t.Fatalf("step (%s, %s) has Seq %d before any maintenance pass", st.A, st.B, st.Seq)
		}
		if len(st.Uses) == 0 {
			t.Fatalf("step (%s, %s) consumed no triples", st.A, st.B)
		}
	}
	if !base {
		t.Fatal("no base (value-only) step in the chain")
	}
	if got := ex.Target(); got != (graphkeys.Pair{A: "alb1", B: "alb2"}) {
		t.Fatalf("Target() = %v", got)
	}
}

// TestMatcherExplainRecursiveKey explains a pair whose key fired
// through prior identifications: art1 ~ art2 holds by Q3, which binds
// an album variable — so the chain must carry a step with non-empty
// Requires, connected by the album steps before it.
func TestMatcherExplainRecursiveKey(t *testing.T) {
	g := musicGraph(t)
	m, err := graphkeys.NewMatcher(g, musicKeys(t), graphkeys.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := m.Explain("art1", "art2")
	if err != nil {
		t.Fatal(err)
	}
	verifyExplanation(t, g, ex)
	recursive := false
	for _, st := range ex.Steps {
		if len(st.Requires) > 0 {
			recursive = true
		}
	}
	if !recursive {
		t.Fatal("artist chain has no step with Requires; expected a recursive-key derivation")
	}
}

// TestMatcherExplainRederivedStep destroys a witness and restores it:
// the re-derived steps must carry the maintenance-pass generation
// (Seq > 0), distinguishing them from initial-chase leftovers, and the
// chain must still verify against the repaired graph.
func TestMatcherExplainRederivedStep(t *testing.T) {
	g := musicGraph(t)
	m, err := graphkeys.NewMatcher(g, musicKeys(t), graphkeys.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Apply(graphkeys.NewDelta().
		RemoveValueTriple("alb2", "release_year", "1996")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Explain("alb1", "alb2"); err == nil {
		t.Fatal("Explain succeeded for a pair whose identification was removed")
	}
	if _, _, err := m.Apply(graphkeys.NewDelta().
		AddValueTriple("alb2", "release_year", "1996")); err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]graphkeys.EntityID{{"alb1", "alb2"}, {"art1", "art2"}} {
		ex, err := m.Explain(pair[0], pair[1])
		if err != nil {
			t.Fatal(err)
		}
		verifyExplanation(t, g, ex)
		rederived := false
		for _, st := range ex.Steps {
			if st.Seq > 0 {
				rederived = true
			}
		}
		if !rederived {
			t.Fatalf("(%s, %s): no step carries a maintenance-pass Seq after re-derivation", pair[0], pair[1])
		}
	}
}

func TestMatcherExplainErrorsAndIdentity(t *testing.T) {
	m, err := graphkeys.NewMatcher(musicGraph(t), musicKeys(t), graphkeys.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Explain("alb1", "nope"); err == nil {
		t.Fatal("unknown entity did not error")
	}
	if _, err := m.Explain("alb1", "alb3"); err == nil {
		t.Fatal("unidentified pair did not error")
	}
	ex, err := m.Explain("alb1", "alb1")
	if err != nil {
		t.Fatal(err)
	}
	if len(ex.Steps) != 0 {
		t.Fatalf("identity pair explained with %d steps, want 0", len(ex.Steps))
	}
}
