package graphkeys_test

import (
	"fmt"

	"graphkeys"
)

// Example reproduces the paper's running example: albums identified by
// name and release year, artists identified recursively via an album
// they recorded.
func Example() {
	g := graphkeys.NewGraph()
	for _, e := range []struct{ id, typ string }{
		{"alb1", "album"}, {"alb2", "album"},
		{"art1", "artist"}, {"art2", "artist"},
	} {
		if err := g.AddEntity(e.id, e.typ); err != nil {
			panic(err)
		}
	}
	for _, t := range [][3]string{
		{"alb1", "name_of", "Anthology 2"},
		{"alb2", "name_of", "Anthology 2"},
		{"alb1", "release_year", "1996"},
		{"alb2", "release_year", "1996"},
		{"art1", "name_of", "The Beatles"},
		{"art2", "name_of", "The Beatles"},
	} {
		if err := g.AddValueTriple(t[0], t[1], t[2]); err != nil {
			panic(err)
		}
	}
	_ = g.AddEntityTriple("alb1", "recorded_by", "art1")
	_ = g.AddEntityTriple("alb2", "recorded_by", "art2")

	ks, err := graphkeys.ParseKeys(`
key Q2 for album {
    x -name_of-> name*
    x -release_year-> year*
}
key Q3 for artist {
    x -name_of-> name*
    $a:album -recorded_by-> x
}`)
	if err != nil {
		panic(err)
	}
	res, err := graphkeys.Match(g, ks, graphkeys.Options{})
	if err != nil {
		panic(err)
	}
	for _, m := range res.Matches {
		fmt.Printf("%s == %s\n", m.A, m.B)
	}
	// Output:
	// alb1 == alb2
	// art1 == art2
}

// ExampleExplain shows proof extraction: why a recursive identification
// holds.
func ExampleExplain() {
	g := graphkeys.NewGraph()
	_ = g.AddEntity("a1", "album")
	_ = g.AddEntity("a2", "album")
	_ = g.AddEntity("r1", "artist")
	_ = g.AddEntity("r2", "artist")
	_ = g.AddValueTriple("a1", "name_of", "N")
	_ = g.AddValueTriple("a2", "name_of", "N")
	_ = g.AddValueTriple("a1", "release_year", "2000")
	_ = g.AddValueTriple("a2", "release_year", "2000")
	_ = g.AddValueTriple("r1", "name_of", "R")
	_ = g.AddValueTriple("r2", "name_of", "R")
	_ = g.AddEntityTriple("a1", "recorded_by", "r1")
	_ = g.AddEntityTriple("a2", "recorded_by", "r2")
	ks, _ := graphkeys.ParseKeys(`
key Q2 for album {
    x -name_of-> n*
    x -release_year-> y*
}
key Q3 for artist {
    x -name_of-> n*
    $a:album -recorded_by-> x
}`)
	proof, err := graphkeys.Explain(g, ks, "r1", "r2", graphkeys.Options{})
	if err != nil {
		panic(err)
	}
	for _, st := range proof.Steps {
		fmt.Printf("%s identifies (%s, %s)\n", st.Key, st.A, st.B)
	}
	// Output:
	// Q2 identifies (a1, a2)
	// Q3 identifies (r1, r2)
}

// ExampleValidate shows key-satisfaction checking: a graph violating a
// key contains duplicates.
func ExampleValidate() {
	g := graphkeys.NewGraph()
	_ = g.AddEntity("s1", "street")
	_ = g.AddEntity("s2", "street")
	_ = g.AddValueTriple("s1", "zip_code", "EH8 9AB")
	_ = g.AddValueTriple("s2", "zip_code", "EH8 9AB")
	_ = g.AddValueTriple("s1", "nation_of", "UK")
	_ = g.AddValueTriple("s2", "nation_of", "UK")
	ks, _ := graphkeys.ParseKeys(`
key Q6 for street {
    x -zip_code-> code*
    x -nation_of-> "UK"
}`)
	vs, _ := graphkeys.Validate(g, ks, graphkeys.Options{})
	for _, v := range vs {
		fmt.Printf("%s violated by (%s, %s)\n", v.Key, v.A, v.B)
	}
	// Output:
	// Q6 violated by (s1, s2)
}
