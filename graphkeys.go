// Package graphkeys is a Go implementation of "Keys for Graphs"
// (Wenfei Fan, Zhe Fan, Chao Tian, Xin Luna Dong; PVLDB 8(12), 2015):
// keys for graph-structured data defined as graph patterns, interpreted
// by subgraph isomorphism, possibly recursively — and the entity
// matching problem built on them, computing chase(G, Σ): all pairs of
// vertices a set of keys identifies as the same real-world entity.
//
// # Quick start
//
//	g := graphkeys.NewGraph()
//	g.AddEntity("alb1", "album")
//	g.AddValueTriple("alb1", "name_of", "Anthology 2")
//	g.AddValueTriple("alb1", "release_year", "1996")
//	// ... more triples ...
//
//	ks, _ := graphkeys.ParseKeys(`
//	key Q2 for album {
//	    x -name_of-> name*
//	    x -release_year-> year*
//	}`)
//
//	res, _ := graphkeys.Match(g, ks, graphkeys.Options{})
//	for _, m := range res.Matches {
//	    fmt.Println(m.A, "and", m.B, "are the same entity")
//	}
//
// Six engines are available: the sequential chase (the reference), the
// parallel chase (ParallelChase, the serving-grade engine: candidate
// checks fan out over a worker pool against the shard-partitioned
// store), the MapReduce family (EMMR, EMVF2MR, EMOptMR) and the
// vertex-centric family (EMVC, EMOptVC), all returning identical
// results; the engines differ in how the work parallelizes, which is
// the subject of the paper's experimental study (reproduced in this
// repository's benchmarks).
package graphkeys

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"graphkeys/internal/chase"
	"graphkeys/internal/emmr"
	"graphkeys/internal/emvc"
	"graphkeys/internal/engine"
	"graphkeys/internal/eqrel"
	"graphkeys/internal/graph"
	"graphkeys/internal/keys"
	"graphkeys/internal/match"
)

// EntityID names an entity in a Graph; it is the external identifier
// the caller supplied to AddEntity.
type EntityID = string

// Graph is a mutable triple store: entities with types, values, and
// predicate-labeled edges. Build it with the Add methods or load the
// text format with LoadGraph; it is safe for concurrent readers once
// building is done.
type Graph struct {
	g *graph.Graph
}

// NewGraph returns an empty graph.
func NewGraph() *Graph { return &Graph{g: graph.New()} }

// AddEntity ensures an entity with the given external ID and type
// exists. Re-adding with a different type is an error.
func (g *Graph) AddEntity(id EntityID, typeName string) error {
	_, err := g.g.AddEntity(id, typeName)
	return err
}

// AddEntityTriple records (subject, predicate, object) between two
// entities, creating neither: both must have been added.
func (g *Graph) AddEntityTriple(subject EntityID, predicate string, object EntityID) error {
	s, ok := g.g.Entity(subject)
	if !ok {
		return fmt.Errorf("graphkeys: unknown subject entity %q", subject)
	}
	o, ok := g.g.Entity(object)
	if !ok {
		return fmt.Errorf("graphkeys: unknown object entity %q", object)
	}
	return g.g.AddTriple(s, predicate, o)
}

// AddValueTriple records (subject, predicate, value) where value is a
// data literal.
func (g *Graph) AddValueTriple(subject EntityID, predicate string, value string) error {
	s, ok := g.g.Entity(subject)
	if !ok {
		return fmt.Errorf("graphkeys: unknown subject entity %q", subject)
	}
	return g.g.AddTriple(s, predicate, g.g.AddValue(value))
}

// NumTriples reports |G|.
func (g *Graph) NumTriples() int { return g.g.NumTriples() }

// NumEntities reports the number of entities.
func (g *Graph) NumEntities() int { return g.g.NumEntities() }

// NumNodes reports entities plus values.
func (g *Graph) NumNodes() int { return g.g.NumNodes() }

// HasEntity reports whether the entity exists, with its type.
func (g *Graph) HasEntity(id EntityID) (typeName string, ok bool) {
	n, ok := g.g.Entity(id)
	if !ok {
		return "", false
	}
	return g.g.TypeName(g.g.TypeOf(n)), true
}

// Write serializes the graph in the text format (one tab-separated
// triple per line; see LoadGraph).
func (g *Graph) Write(w io.Writer) error { return g.g.WriteText(w) }

// LoadGraph parses the text format:
//
//	subject <TAB> predicate <TAB> object
//
// with entities written id:Type and values as Go-quoted strings.
func LoadGraph(r io.Reader) (*Graph, error) {
	gg, err := graph.ParseText(r)
	if err != nil {
		return nil, err
	}
	return &Graph{g: gg}, nil
}

// KeySet is a parsed, validated set Σ of keys.
type KeySet struct {
	set *keys.Set
}

// ParseKeys parses keys in the DSL:
//
//	key Q1 for album {
//	    x -name_of-> name*
//	    x -recorded_by-> $y:artist
//	}
//
// Node tokens: x (the designated variable), $y:type (entity variable;
// makes the key recursive), name* (value variable), _:type (wildcard),
// "literal" (constant).
func ParseKeys(src string) (*KeySet, error) {
	return ParseKeysFrom(strings.NewReader(src))
}

// ParseKeysFrom is ParseKeys reading from r.
func ParseKeysFrom(r io.Reader) (*KeySet, error) {
	set, err := keys.Parse(r)
	if err != nil {
		return nil, err
	}
	return &KeySet{set: set}, nil
}

// Names returns the key names in input order.
func (k *KeySet) Names() []string {
	var out []string
	for _, key := range k.set.Keys() {
		out = append(out, key.Name)
	}
	return out
}

// Len returns ||Σ||, the number of keys.
func (k *KeySet) Len() int { return k.set.Cardinality() }

// Size returns |Σ|, the total number of pattern triples.
func (k *KeySet) Size() int { return k.set.TotalSize() }

// MaxRadius returns the largest key radius d(Q, x) in the set.
func (k *KeySet) MaxRadius() int { return k.set.MaxRadius() }

// LongestChain returns the longest dependency chain length c induced by
// the recursive keys, and whether the dependency graph is cyclic
// (mutually recursive keys).
func (k *KeySet) LongestChain() (c int, cyclic bool) { return k.set.LongestChain() }

// Format renders the set back into the DSL.
func (k *KeySet) Format() string { return k.set.Format() }

// Engine selects the algorithm computing chase(G, Σ).
type Engine int

const (
	// Chase is the sequential reference algorithm (§3).
	Chase Engine = iota
	// MapReduce is EMMR (§4.1): guided-search checking in synchronized
	// rounds over a simulated MapReduce runtime.
	MapReduce
	// MapReduceVF2 is EM^VF2_MR: the enumerate-all baseline checker.
	MapReduceVF2
	// MapReduceOpt is EM^Opt_MR (§4.2): pairing-filtered candidates,
	// reduced neighborhoods, dependency-driven incremental checking.
	MapReduceOpt
	// VertexCentric is EMVC (§5.1): asynchronous message passing over
	// the product graph.
	VertexCentric
	// VertexCentricOpt is EM^Opt_VC (§5.2): bounded messages and
	// prioritized propagation.
	VertexCentricOpt
	// ParallelChase is the chase parallelized on the shared engine
	// substrate: candidate checks partition across Options.Parallelism
	// workers, identifications merge through a lock-protected Eq, and
	// a dependency worklist drives recursive re-checks. By
	// Church–Rosser it returns exactly the sequential chase's result.
	ParallelChase
)

// String names the engine as in the paper.
func (e Engine) String() string {
	switch e {
	case Chase:
		return "Chase"
	case MapReduce:
		return "EMMR"
	case MapReduceVF2:
		return "EMVF2MR"
	case MapReduceOpt:
		return "EMOptMR"
	case VertexCentric:
		return "EMVC"
	case VertexCentricOpt:
		return "EMOptVC"
	case ParallelChase:
		return "ParallelChase"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// Options configures Match.
type Options struct {
	// Engine selects the algorithm; the zero value is Chase, the
	// sequential reference. VertexCentricOpt is the paper's fastest.
	Engine Engine
	// Workers is the parallelism p (ignored by Chase); the default is
	// GOMAXPROCS capped at 4.
	Workers int
	// Parallelism is the worker count of the ParallelChase engine and
	// of a Matcher's incremental repair pass; when unset it falls back
	// to Workers (and then to the same default). Other engines ignore
	// it. Repair output is byte-identical at every worker count.
	Parallelism int
	// BoundK bounds in-flight message copies per pair and key for
	// VertexCentricOpt; 0 means the paper's default of 4.
	BoundK int
	// ValueEq optionally replaces exact value equality with a
	// similarity predicate (paper §2.2 Remark (1)).
	ValueEq func(a, b string) bool
	// FullCandidateSweep disables value-indexed candidate generation
	// and forces the engines to enumerate the full O(n²) per-type
	// candidate sweep. Results are identical either way; the flag
	// exists for measurement and differential testing. Types whose
	// keys lack value anchors, and matchers with a custom ValueEq,
	// always use the full sweep regardless.
	FullCandidateSweep bool
	// Durability selects the WAL append policy of a durable Matcher;
	// only OpenMatcher reads it. The zero value appends without fsync.
	Durability Durability
}

func (o Options) workers() int { return engine.Workers(o.Workers) }

func (o Options) parallelism() int {
	if o.Parallelism >= 1 {
		return o.Parallelism
	}
	return o.workers()
}

// Pair is an identified entity pair.
type Pair struct {
	A, B EntityID
}

// Result is the outcome of entity matching.
type Result struct {
	// Matches is chase(G, Σ): every identified pair (including pairs
	// implied by transitivity), lexicographically sorted by entity ID
	// order of insertion.
	Matches []Pair
	// Classes groups the matched entities into equivalence classes of
	// size >= 2.
	Classes [][]EntityID
	// Engine is the engine that produced the result.
	Engine Engine
}

// Match computes chase(G, Σ): all entity pairs identified by the keys.
// Every engine returns the same Matches; they differ in execution
// strategy and cost.
func Match(g *Graph, ks *KeySet, opts Options) (*Result, error) {
	if g == nil || ks == nil {
		return nil, fmt.Errorf("graphkeys: Match requires a graph and a key set")
	}
	mo := match.Options{ValueEq: opts.ValueEq}
	var pairs []eqrel.Pair
	switch opts.Engine {
	case Chase:
		res, err := chase.Run(g.g, ks.set, chase.Options{Match: mo, FullSweep: opts.FullCandidateSweep})
		if err != nil {
			return nil, err
		}
		pairs = res.Pairs
	case ParallelChase:
		res, err := chase.Run(g.g, ks.set, chase.Options{Match: mo, FullSweep: opts.FullCandidateSweep, Parallelism: opts.parallelism()})
		if err != nil {
			return nil, err
		}
		pairs = res.Pairs
	case MapReduce, MapReduceVF2, MapReduceOpt:
		variant := emmr.Base
		if opts.Engine == MapReduceVF2 {
			variant = emmr.VF2
		} else if opts.Engine == MapReduceOpt {
			variant = emmr.Opt
		}
		res, err := emmr.Run(g.g, ks.set, emmr.Config{P: opts.workers(), Variant: variant, Match: mo, FullSweep: opts.FullCandidateSweep})
		if err != nil {
			return nil, err
		}
		pairs = res.Pairs
	case VertexCentric, VertexCentricOpt:
		variant := emvc.Base
		if opts.Engine == VertexCentricOpt {
			variant = emvc.Opt
		}
		res, err := emvc.Run(g.g, ks.set, emvc.Config{P: opts.workers(), Variant: variant, K: opts.BoundK, Match: mo, FullSweep: opts.FullCandidateSweep})
		if err != nil {
			return nil, err
		}
		pairs = res.Pairs
	default:
		return nil, fmt.Errorf("graphkeys: unknown engine %v", opts.Engine)
	}
	return buildResult(g, pairs, opts.Engine), nil
}

func buildResult(g *Graph, pairs []eqrel.Pair, eng Engine) *Result {
	res := &Result{Engine: eng}
	parent := make(map[int32]int32)
	var find func(a int32) int32
	find = func(a int32) int32 {
		if p, ok := parent[a]; ok && p != a {
			r := find(p)
			parent[a] = r
			return r
		}
		return a
	}
	for _, pr := range pairs {
		res.Matches = append(res.Matches, Pair{
			A: g.g.Label(graph.NodeID(pr.A)),
			B: g.g.Label(graph.NodeID(pr.B)),
		})
		if _, ok := parent[pr.A]; !ok {
			parent[pr.A] = pr.A
		}
		if _, ok := parent[pr.B]; !ok {
			parent[pr.B] = pr.B
		}
		ra, rb := find(pr.A), find(pr.B)
		if ra != rb {
			parent[rb] = ra
		}
	}
	groups := make(map[int32][]EntityID)
	var order []int32
	for a := range parent {
		r := find(a)
		if _, ok := groups[r]; !ok {
			order = append(order, r)
		}
		groups[r] = append(groups[r], g.g.Label(graph.NodeID(a)))
	}
	// Deterministic output: sort members and classes.
	for _, r := range order {
		sort.Strings(groups[r])
	}
	sort.Slice(order, func(i, j int) bool { return groups[order[i]][0] < groups[order[j]][0] })
	for _, r := range order {
		res.Classes = append(res.Classes, groups[r])
	}
	return res
}

// Violation reports that the graph does not satisfy a key: two distinct
// entities have coinciding matches under plain node identity (G ⊭ Q).
type Violation struct {
	A, B EntityID
	Key  string
}

// Validate checks key satisfaction G ⊨ Σ (§2.2): it returns every
// violation, or none if the graph satisfies all keys.
func Validate(g *Graph, ks *KeySet, opts Options) ([]Violation, error) {
	if g == nil || ks == nil {
		return nil, fmt.Errorf("graphkeys: Validate requires a graph and a key set")
	}
	vs, err := chase.Violations(g.g, ks.set, match.Options{ValueEq: opts.ValueEq})
	if err != nil {
		return nil, err
	}
	var out []Violation
	for _, v := range vs {
		out = append(out, Violation{
			A:   g.g.Label(graph.NodeID(v.Pair.A)),
			B:   g.g.Label(graph.NodeID(v.Pair.B)),
			Key: v.Key,
		})
	}
	return out, nil
}

// ProofStep is one step of an explanation: the key that identified the
// pair and the previously identified pairs it required.
type ProofStep struct {
	A, B     EntityID
	Key      string
	Requires []Pair
}

// Proof explains why two entities were identified: a sequence of key
// applications (a proof graph in the sense of the paper's Theorem 2)
// ending with the target pair, each step depending only on earlier
// ones.
type Proof struct {
	Target Pair
	Steps  []ProofStep
}

// Explain runs the sequential chase and extracts a verifiable proof
// that a and b are identified by the keys. It fails if they are not.
func Explain(g *Graph, ks *KeySet, a, b EntityID, opts Options) (*Proof, error) {
	na, ok := g.g.Entity(a)
	if !ok {
		return nil, fmt.Errorf("graphkeys: unknown entity %q", a)
	}
	nb, ok := g.g.Entity(b)
	if !ok {
		return nil, fmt.Errorf("graphkeys: unknown entity %q", b)
	}
	res, err := chase.Run(g.g, ks.set, chase.Options{Match: match.Options{ValueEq: opts.ValueEq}})
	if err != nil {
		return nil, err
	}
	proof, err := res.Prove(na, nb)
	if err != nil {
		return nil, err
	}
	out := &Proof{Target: Pair{A: a, B: b}}
	for _, st := range proof.Steps {
		ps := ProofStep{
			A:   g.g.Label(graph.NodeID(st.Pair.A)),
			B:   g.g.Label(graph.NodeID(st.Pair.B)),
			Key: st.Key,
		}
		for _, rq := range st.Requires {
			ps.Requires = append(ps.Requires, Pair{
				A: g.g.Label(graph.NodeID(rq.A)),
				B: g.g.Label(graph.NodeID(rq.B)),
			})
		}
		out.Steps = append(out.Steps, ps)
	}
	return out, nil
}
