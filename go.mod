module graphkeys

go 1.24
